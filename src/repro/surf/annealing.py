"""Simulated-annealing baseline searcher.

The related-work section surveys autotuners built on direct search and
metaheuristics (ActiveHarmony, SPIRAL's genetic search, Orio's own
strategy suite includes annealing).  This searcher gives the benchmark
harness a second classical baseline besides random search: a pool-bound
annealer whose neighborhood is "another configuration sharing most
per-kernel decisions" — approximated over a sampled pool by feature
Hamming distance.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import SearchError
from repro.surf.search import SearchResult
from repro.tcr.space import ProgramConfig
from repro.util.rng import spawn_rng

__all__ = ["AnnealingSearch"]


def _feature_distance(a: dict[str, object], b: dict[str, object]) -> int:
    return sum(1 for k in a if a[k] != b[k])


class AnnealingSearch:
    """Pool-bound simulated annealing with a feature-distance neighborhood."""

    name = "annealing"

    def __init__(
        self,
        max_evaluations: int = 100,
        seed: int = 0,
        initial_temperature: float = 1.0,
        cooling: float = 0.95,
        neighborhood: int = 3,
    ) -> None:
        if max_evaluations < 1:
            raise SearchError("evaluation budget must be >= 1")
        if not 0.0 < cooling < 1.0:
            raise SearchError("cooling must be in (0, 1)")
        self.max_evaluations = max_evaluations
        self.seed = seed
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.neighborhood = neighborhood

    def search(
        self,
        pool: Sequence[ProgramConfig],
        evaluate_batch: Callable[[Sequence[ProgramConfig]], list[float]],
        wall_seconds: Callable[[], float] | None = None,
    ) -> SearchResult:
        if not pool:
            raise SearchError("configuration pool is empty")
        rng = spawn_rng(self.seed, "annealing-driver")
        feats = [c.features() for c in pool]
        nmax = min(self.max_evaluations, len(pool))

        current = int(rng.integers(0, len(pool)))
        history: list[tuple[ProgramConfig, float]] = []
        evaluated: dict[int, float] = {}

        def score(i: int) -> float:
            if i not in evaluated:
                [y] = evaluate_batch([pool[i]])
                evaluated[i] = float(y)
                history.append((pool[i], evaluated[i]))
            return evaluated[i]

        current_y = score(current)
        temperature = self.initial_temperature
        while len(history) < nmax:
            # Neighborhood: the unevaluated pool points closest in feature
            # space; pick one at random among the nearest `neighborhood`.
            candidates = [i for i in range(len(pool)) if i not in evaluated]
            if not candidates:
                break
            candidates.sort(
                key=lambda i: _feature_distance(feats[current], feats[i])
            )
            pick = candidates[int(rng.integers(0, min(self.neighborhood, len(candidates))))]
            y = score(pick)
            # log-scale acceptance: objectives span orders of magnitude.
            delta = math.log(max(y, 1e-12)) - math.log(max(current_y, 1e-12))
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current, current_y = pick, y
            temperature *= self.cooling

        ys = np.array([y for _c, y in history])
        best = int(np.argmin(ys))
        return SearchResult(
            searcher=self.name,
            best_config=history[best][0],
            best_objective=history[best][1],
            history=history,
            evaluations=len(history),
            simulated_wall_seconds=wall_seconds() if wall_seconds else 0.0,
        )
