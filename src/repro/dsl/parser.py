"""Recursive-descent parser for the OCTOPI DSL plus semantic lowering.

:func:`parse_program` returns fully validated :class:`~repro.core.contraction.Contraction`
objects — one per summation statement — with index extents resolved from
``dim`` declarations (range declarations like ``dim p = 8..12`` yield one
contraction per size, the paper's "specify ... a range of dimensions so that
the framework can specialize").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contraction import Contraction
from repro.core.indices import ordered_unique
from repro.core.tensor import TensorRef
from repro.dsl.ast import DimDecl, ProgramNode, SumStatement, TensorRefNode
from repro.dsl.lexer import tokenize
from repro.dsl.tokens import Token, TokenKind
from repro.errors import DSLSemanticError, DSLSyntaxError

__all__ = ["parse_program", "parse_contraction", "ParsedProgram"]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind, what: str) -> Token:
        tok = self.current
        if tok.kind != kind:
            raise DSLSyntaxError(
                f"expected {what}, found {tok}", tok.line, tok.column
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.current.kind == TokenKind.NEWLINE:
            self.advance()

    # -- grammar -------------------------------------------------------
    def parse(self) -> ProgramNode:
        statements: list[DimDecl | SumStatement] = []
        self.skip_newlines()
        while self.current.kind != TokenKind.EOF:
            statements.append(self.statement())
            self.skip_newlines()
        return ProgramNode(tuple(statements))

    def statement(self) -> DimDecl | SumStatement:
        tok = self.current
        if tok.kind == TokenKind.IDENT and tok.text == "dim":
            return self.dim_decl()
        return self.sum_statement()

    def dim_decl(self) -> DimDecl:
        start = self.expect(TokenKind.IDENT, "'dim'")
        names: list[str] = []
        while self.current.kind == TokenKind.IDENT:
            names.append(self.advance().text)
        if not names:
            raise DSLSyntaxError("dim declaration names no indices", start.line)
        self.expect(TokenKind.EQUALS, "'=' in dim declaration")
        low = int(self.expect(TokenKind.INT, "dimension size").text)
        high = low
        if self.current.kind == TokenKind.RANGE:
            self.advance()
            high = int(self.expect(TokenKind.INT, "range upper bound").text)
        if low <= 0 or high < low:
            raise DSLSemanticError(
                f"invalid dimension range {low}..{high} at line {start.line}"
            )
        self.end_of_statement()
        return DimDecl(tuple(names), low, high, start.line)

    def sum_statement(self) -> SumStatement:
        lhs = self.tensor_ref()
        accumulate = False
        if self.current.kind == TokenKind.PLUSEQ:
            accumulate = True
            self.advance()
        else:
            self.expect(TokenKind.EQUALS, "'=' or '+='")
        sum_indices: tuple[str, ...] | None = None
        if (
            self.current.kind == TokenKind.IDENT
            and self.current.text == "Sum"
            and self.tokens[self.pos + 1].kind == TokenKind.LPAREN
        ):
            self.advance()  # Sum
            self.advance()  # (
            self.expect(TokenKind.LBRACKET, "'[' opening the summation index list")
            idx: list[str] = []
            while self.current.kind == TokenKind.IDENT:
                idx.append(self.advance().text)
                if self.current.kind == TokenKind.COMMA:
                    self.advance()
            self.expect(TokenKind.RBRACKET, "']' closing the summation index list")
            self.expect(TokenKind.COMMA, "',' after the summation index list")
            sum_indices = tuple(idx)
            factors = self.product()
            self.expect(TokenKind.RPAREN, "')' closing Sum(...)")
        else:
            factors = self.product()
        self.end_of_statement()
        return SumStatement(lhs, sum_indices, factors, accumulate, lhs.line)

    def product(self) -> tuple[TensorRefNode, ...]:
        factors = [self.tensor_ref()]
        while self.current.kind == TokenKind.STAR:
            self.advance()
            factors.append(self.tensor_ref())
        return tuple(factors)

    def tensor_ref(self) -> TensorRefNode:
        name_tok = self.expect(TokenKind.IDENT, "a tensor name")
        self.expect(TokenKind.LBRACKET, f"'[' after tensor {name_tok.text!r}")
        indices: list[str] = []
        while self.current.kind == TokenKind.IDENT:
            indices.append(self.advance().text)
            if self.current.kind == TokenKind.COMMA:
                self.advance()
        self.expect(TokenKind.RBRACKET, f"']' closing indices of {name_tok.text!r}")
        return TensorRefNode(name_tok.text, tuple(indices), name_tok.line)

    def end_of_statement(self) -> None:
        if self.current.kind == TokenKind.EOF:
            return
        self.expect(TokenKind.NEWLINE, "end of statement")


# ----------------------------------------------------------------------
# Semantic lowering
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParsedProgram:
    """The semantic result: contractions with resolved dimensions.

    ``contractions`` holds one entry per summation statement and per size in
    any declared dimension *range* (specialization).  ``dims`` is the base
    extent map (at the low end of each range).
    """

    contractions: tuple[Contraction, ...]
    dims: dict[str, int]


def parse_program(
    text: str,
    default_dim: int | None = None,
    name: str = "program",
) -> ParsedProgram:
    """Parse DSL ``text`` into validated contractions.

    Parameters
    ----------
    text:
        The OCTOPI source.
    default_dim:
        Extent for indices with no ``dim`` declaration; if ``None``,
        undeclared indices are an error.
    name:
        Base name used for the produced contractions (suffixed with the
        statement number and, for ranged dims, the size).
    """
    node = _Parser(tokenize(text)).parse()
    ranges: dict[str, tuple[int, int]] = {}
    statements: list[SumStatement] = []
    for stmt in node.statements:
        if isinstance(stmt, DimDecl):
            for idx in stmt.names:
                if idx in ranges and ranges[idx] != (stmt.low, stmt.high):
                    raise DSLSemanticError(
                        f"index {idx!r} re-declared with a different size "
                        f"(line {stmt.line})"
                    )
                ranges[idx] = (stmt.low, stmt.high)
        else:
            statements.append(stmt)
    if not statements:
        raise DSLSemanticError("program contains no summation statements")

    contractions: list[Contraction] = []
    multi = len(statements) > 1
    for s, stmt in enumerate(statements):
        base = f"{name}_s{s}" if multi else name
        for dims, suffix in _dim_specializations(stmt, ranges, default_dim):
            contractions.append(_lower_statement(stmt, dims, base + suffix))
    return ParsedProgram(tuple(contractions), _base_dims(ranges))


def parse_contraction(
    text: str, default_dim: int | None = None, name: str = "contraction"
) -> Contraction:
    """Parse a single-statement program and return its one contraction."""
    parsed = parse_program(text, default_dim=default_dim, name=name)
    if len(parsed.contractions) != 1:
        raise DSLSemanticError(
            f"expected exactly one contraction, parsed {len(parsed.contractions)}"
        )
    return parsed.contractions[0]


def _base_dims(ranges: dict[str, tuple[int, int]]) -> dict[str, int]:
    return {idx: low for idx, (low, _high) in ranges.items()}


def _statement_indices(stmt: SumStatement) -> tuple[str, ...]:
    return ordered_unique(
        tuple(stmt.lhs.indices) + tuple(i for f in stmt.factors for i in f.indices)
    )


def _dim_specializations(
    stmt: SumStatement,
    ranges: dict[str, tuple[int, int]],
    default_dim: int | None,
):
    """Yield (dims, name_suffix) per specialization of ranged dimensions.

    All ranged indices step together (the spectral-element use case: one
    polynomial order p sets every extent); mismatched range widths are an
    error to keep specializations unambiguous.
    """
    indices = _statement_indices(stmt)
    dims: dict[str, int] = {}
    ranged: list[str] = []
    widths: set[int] = set()
    for idx in indices:
        if idx in ranges:
            low, high = ranges[idx]
            dims[idx] = low
            if high != low:
                ranged.append(idx)
                widths.add(high - low)
        elif default_dim is not None:
            dims[idx] = default_dim
        else:
            raise DSLSemanticError(
                f"index {idx!r} (line {stmt.line}) has no dim declaration and "
                "no default_dim was provided"
            )
    if not ranged:
        yield dims, ""
        return
    if len(widths) != 1:
        raise DSLSemanticError(
            f"ranged dimensions of statement at line {stmt.line} have "
            "different widths; cannot specialize jointly"
        )
    width = widths.pop()
    for step in range(width + 1):
        spec = dict(dims)
        for idx in ranged:
            spec[idx] = ranges[idx][0] + step
        yield spec, f"_n{ranges[ranged[0]][0] + step}"


def _lower_statement(
    stmt: SumStatement, dims: dict[str, int], name: str
) -> Contraction:
    output = TensorRef(stmt.lhs.name, stmt.lhs.indices)
    terms = tuple(TensorRef(f.name, f.indices) for f in stmt.factors)
    contraction = Contraction(output=output, terms=terms, dims=dims, name=name)
    if stmt.sum_indices is not None:
        derived = set(contraction.summation_indices)
        declared = set(stmt.sum_indices)
        if declared != derived:
            raise DSLSemanticError(
                f"Sum([...]) at line {stmt.line} lists indices "
                f"{sorted(declared)} but the Einstein-derived summation set "
                f"is {sorted(derived)}"
            )
        if len(stmt.sum_indices) != len(declared):
            raise DSLSemanticError(
                f"Sum([...]) at line {stmt.line} repeats an index"
            )
    return contraction
