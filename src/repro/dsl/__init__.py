"""The OCTOPI input language (the paper's Fig. 2a).

.. code-block:: text

    # spectral-element interpolation, Eqn.(1) of the paper
    dim i j k l m n = 10
    V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])

A program is a sequence of dimension declarations and summation statements.
Summation indices may be written explicitly with ``Sum([...], ...)`` (and
are validated against the Einstein-convention derivation) or left implicit.
"""

from repro.dsl.parser import parse_program, parse_contraction
from repro.dsl.printer import format_contraction, format_program
from repro.dsl.einsum import contraction_to_einsum, einsum_to_contraction

__all__ = [
    "parse_program",
    "parse_contraction",
    "format_contraction",
    "format_program",
    "contraction_to_einsum",
    "einsum_to_contraction",
]
