"""Abstract syntax tree for the OCTOPI DSL.

The AST is deliberately tiny — the language has two statement forms
(dimension declarations and summation statements) and one expression form
(a product of tensor references, optionally wrapped in an explicit ``Sum``).
Semantic conversion to the core IR lives in the parser module.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TensorRefNode", "SumStatement", "DimDecl", "ProgramNode"]


@dataclass(frozen=True)
class TensorRefNode:
    """``A[l k]`` — a tensor name with bracketed indices."""

    name: str
    indices: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class SumStatement:
    """``V[i j k] = Sum([l m n], A[l k] * ...)`` or the implicit form.

    ``sum_indices`` is ``None`` when the Einstein convention is relied on
    (no explicit ``Sum``); ``accumulate`` records ``+=`` vs ``=``.
    """

    lhs: TensorRefNode
    sum_indices: tuple[str, ...] | None
    factors: tuple[TensorRefNode, ...]
    accumulate: bool
    line: int


@dataclass(frozen=True)
class DimDecl:
    """``dim i j k = 10`` or ``dim p = 8..12`` (a range of sizes)."""

    names: tuple[str, ...]
    low: int
    high: int  # == low unless a range was given
    line: int


@dataclass(frozen=True)
class ProgramNode:
    statements: tuple[DimDecl | SumStatement, ...]
