"""Hand-rolled lexer for the OCTOPI DSL.

Produces a flat token stream with source positions; ``#`` starts a comment
running to end of line; newlines are significant (they separate statements)
but blank lines collapse.
"""

from __future__ import annotations

from repro.dsl.tokens import Token, TokenKind
from repro.errors import DSLSyntaxError

__all__ = ["tokenize"]

_PUNCT = {
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "*": TokenKind.STAR,
}


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with a single EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(text)

    def emit(kind: TokenKind, tok_text: str, tok_col: int) -> None:
        tokens.append(Token(kind, tok_text, line, tok_col))

    while i < n:
        ch = text[i]
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "\n":
            if tokens and tokens[-1].kind != TokenKind.NEWLINE:
                emit(TokenKind.NEWLINE, "\\n", col)
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch in _PUNCT:
            emit(_PUNCT[ch], ch, col)
            i += 1
            col += 1
            continue
        if ch == "=":
            emit(TokenKind.EQUALS, "=", col)
            i += 1
            col += 1
            continue
        if ch == "+" and i + 1 < n and text[i + 1] == "=":
            emit(TokenKind.PLUSEQ, "+=", col)
            i += 2
            col += 2
            continue
        if ch == "." and i + 1 < n and text[i + 1] == ".":
            emit(TokenKind.RANGE, "..", col)
            i += 2
            col += 2
            continue
        if ch.isdigit():
            start = i
            start_col = col
            while i < n and text[i].isdigit():
                i += 1
                col += 1
            emit(TokenKind.INT, text[start:i], start_col)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
                col += 1
            emit(TokenKind.IDENT, text[start:i], start_col)
            continue
        raise DSLSyntaxError(f"unexpected character {ch!r}", line, col)

    if tokens and tokens[-1].kind != TokenKind.NEWLINE:
        tokens.append(Token(TokenKind.NEWLINE, "\\n", line, col))
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
