"""Token definitions for the OCTOPI DSL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenKind", "Token"]


class TokenKind(Enum):
    IDENT = auto()      # V, Sum, i, temp1, h7
    INT = auto()        # 10
    LBRACKET = auto()   # [
    RBRACKET = auto()   # ]
    LPAREN = auto()     # (
    RPAREN = auto()     # )
    COMMA = auto()      # ,
    STAR = auto()       # *
    EQUALS = auto()     # =
    PLUSEQ = auto()     # +=
    RANGE = auto()      # ..  (dimension ranges: dim p = 8..12)
    NEWLINE = auto()    # statement separator
    EOF = auto()


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        if self.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            return self.kind.name
        return f"{self.kind.name}({self.text})"
