"""Pretty-printing core IR back to OCTOPI DSL text (round-trip support)."""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.contraction import Contraction

__all__ = ["format_contraction", "format_program"]


def format_contraction(contraction: Contraction, with_dims: bool = True) -> str:
    """Render one contraction in Fig. 2(a) style, optionally with dims."""
    lines: list[str] = []
    if with_dims:
        by_size: dict[int, list[str]] = {}
        for idx in contraction.all_indices:
            by_size.setdefault(contraction.dims[idx], []).append(idx)
        for size, names in sorted(by_size.items()):
            lines.append(f"dim {' '.join(names)} = {size}")
    lhs = f"{contraction.output.name}[{' '.join(contraction.output.indices)}]"
    product = " * ".join(
        f"{t.name}[{' '.join(t.indices)}]" for t in contraction.terms
    )
    summed = contraction.summation_indices
    if summed:
        lines.append(f"{lhs} = Sum([{' '.join(summed)}], {product})")
    else:
        lines.append(f"{lhs} = {product}")
    return "\n".join(lines)


def format_program(contractions: Iterable[Contraction]) -> str:
    """Render several statements, emitting shared dims once."""
    contractions = list(contractions)
    dims: dict[str, int] = {}
    for c in contractions:
        for idx, size in c.dims.items():
            dims.setdefault(idx, size)
    lines: list[str] = []
    by_size: dict[int, list[str]] = {}
    for idx, size in dims.items():
        by_size.setdefault(size, []).append(idx)
    for size, names in sorted(by_size.items()):
        lines.append(f"dim {' '.join(names)} = {size}")
    for c in contractions:
        lines.append(format_contraction(c, with_dims=False))
    return "\n".join(lines)
