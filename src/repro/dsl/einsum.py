"""Bridge between the OCTOPI IR and :func:`numpy.einsum` notation.

Many downstream users think in einsum strings; these helpers let them enter
and leave the DSL world without writing Fig. 2(a) text.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.contraction import Contraction

__all__ = ["contraction_to_einsum", "einsum_to_contraction"]


def contraction_to_einsum(contraction: Contraction) -> str:
    """The explicit einsum subscript string for a contraction."""
    return contraction.einsum_spec()


def einsum_to_contraction(
    spec: str,
    names: Sequence[str],
    dims: Mapping[str, int] | int,
    output_name: str = "out",
    name: str = "contraction",
) -> Contraction:
    """Build a :class:`Contraction` from an einsum spec (see
    :meth:`Contraction.from_einsum`)."""
    return Contraction.from_einsum(
        spec, names, dims, output_name=output_name, name=name
    )
