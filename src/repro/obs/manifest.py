"""Run provenance: the ``manifest.json`` written next to traces/checkpoints.

A :class:`RunManifest` captures everything needed to attribute and replay
a tuning run — package version, workload name, architecture and
calibration fingerprints (stable hashes over their dataclass fields), a
DSL hash over the tuned TCR programs, the master seed, and the searcher
settings.  Kernel Tuner persists the same kind of header atop its cache
files; here it is a standalone JSON document so checkpoints and traces
stay self-describing.

Determinism contract: a manifest contains **no wall-clock fields** — two
runs with identical settings produce byte-identical ``manifest.json``, so
manifests can be diffed (and checked in) like any other fingerprint.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.util.rng import stable_hash

__all__ = ["RunManifest", "MANIFEST_FORMAT", "MANIFEST_FILENAME", "fingerprint_of"]

#: Bump on any incompatible change to the manifest layout.
MANIFEST_FORMAT = 1

MANIFEST_FILENAME = "manifest.json"


def fingerprint_of(obj: object) -> str:
    """Stable hex fingerprint of a (frozen) dataclass's field values."""
    if is_dataclass(obj) and not isinstance(obj, type):
        payload = {f.name: getattr(obj, f.name) for f in fields(obj)}
    else:
        payload = obj
    return format(stable_hash(type(obj).__name__, payload), "016x")


@dataclass(frozen=True)
class RunManifest:
    """Provenance header of one autotuning run (no wall-clock fields)."""

    name: str
    package_version: str
    arch: str
    arch_fingerprint: str
    calibration_fingerprint: str
    dsl_fingerprint: str
    seed: int
    searcher: str
    settings: dict = field(default_factory=dict)
    format: int = MANIFEST_FORMAT

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot read run manifest {path}: {exc}") from None
        if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
            raise ReproError(
                f"unsupported manifest format in {path} "
                f"(got {payload.get('format')!r}, want {MANIFEST_FORMAT})"
            )
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
