"""Hierarchical span tracing for the Barracuda pipeline.

A :class:`Tracer` records a tree of timed **spans** (context-manager API)
and point-in-time **events** across the whole flow — DSL parse, OCTOPI
variant generation, the TCR decision algorithm, space enumeration, search
batches, and the evaluator stack.  Spans carry free-form attribute
dictionaries (the same counters :class:`~repro.surf.telemetry.SearchTelemetry`
aggregates), a monotonic start offset relative to the tracer's epoch, and
thread/process ids so traces from worker threads interleave correctly.

Design rules:

* **Zero overhead when off.**  The ambient tracer defaults to
  :data:`NULL_TRACER`, whose ``span()`` returns one shared no-op handle —
  no ``Span`` objects, no clock reads, no list growth.  Hot call sites
  additionally guard attribute *computation* behind ``tracer.enabled``.
* **Determinism-neutral.**  Tracing only reads pipeline state; span ids and
  timestamps never feed a fingerprint, a checkpoint, or an rng stream, so
  tier-1 results are bitwise identical with tracing on or off.
* **Thread/process safety.**  Span ids come from a lock-protected counter;
  the open-span stack is thread-local (parentage follows each thread's own
  nesting); every span records ``os.getpid()``/``threading.get_ident()``.

The ambient tracer is installed with :func:`use_tracer` (a context manager
that restores the previous tracer on exit) and read with
:func:`get_tracer`; library code never needs a tracer argument threaded
through its signatures.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One finished span (or instant event) of a trace.

    ``start_s`` is seconds since the owning tracer's epoch; ``duration_s``
    is ``None`` for instant events.  ``attributes`` holds whatever the
    instrumented code attached (batch counters, sizes, names).
    """

    name: str
    category: str = ""
    span_id: int = 0
    parent_id: int | None = None
    pid: int = 0
    tid: int = 0
    start_s: float = 0.0
    duration_s: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def is_event(self) -> bool:
        return self.duration_s is None

    def set(self, **attributes) -> None:
        """Attach attributes to the span (inside its ``with`` block)."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        return asdict(self)


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_attributes", "_parent", "span")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        attributes: dict,
        parent: "Span | int | None" = None,
    ):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attributes = attributes
        self._parent = parent
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer._begin(
            self._name, self._category, self._attributes, parent=self._parent
        )
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._end(self.span, failed=exc_type is not None)
        return False


class Tracer:
    """Collects spans/events for one run.

    Parameters
    ----------
    clock:
        Monotonic time source (seconds).  Injectable for deterministic
        golden-file tests; defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._next_id = 1
        self._finished: list[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _begin(
        self,
        name: str,
        category: str,
        attributes: dict,
        parent: Span | int | None = None,
    ) -> Span:
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        if parent is None:
            parent_id = stack[-1].span_id if stack else None
        else:
            parent_id = parent.span_id if isinstance(parent, Span) else int(parent)
        span = Span(
            name=name,
            category=category,
            span_id=span_id,
            parent_id=parent_id,
            pid=os.getpid(),
            tid=threading.get_ident(),
            start_s=self._now(),
            duration_s=None,
            attributes=dict(attributes),
        )
        if parent is None:
            # Explicit-parent spans stay off the nesting stack: several may
            # be open concurrently (one per worker chunk) and must neither
            # nest under each other nor adopt later same-thread spans.
            stack.append(span)
        return span

    def _end(self, span: Span, failed: bool = False) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit — still unwind correctly
            stack.remove(span)
        if failed:
            span.attributes.setdefault("error", True)
        span.duration_s = max(0.0, self._now() - span.start_s)
        with self._lock:
            self._finished.append(span)

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "",
        parent: Span | int | None = None,
        **attributes,
    ) -> _SpanContext:
        """Open a timed span: ``with tracer.span("search.run") as sp: ...``

        ``parent`` overrides the thread-local nesting: pass the enclosing
        :class:`Span` (or its id) to attach work that does not run inside
        the parent's ``with`` block on this thread — e.g. per-worker chunk
        spans recorded by the driver while futures resolve out of order.
        """
        return _SpanContext(self, name, category, attributes, parent=parent)

    def event(self, name: str, category: str = "", **attributes) -> Span:
        """Record an instant event under the current open span (if any)."""
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            category=category,
            span_id=span_id,
            parent_id=stack[-1].span_id if stack else None,
            pid=os.getpid(),
            tid=threading.get_ident(),
            start_s=self._now(),
            duration_s=None,
            attributes=dict(attributes),
        )
        with self._lock:
            self._finished.append(span)
        return span

    def add_attributes(self, **attributes) -> None:
        """Attach attributes to this thread's innermost open span."""
        stack = self._stack()
        if stack:
            stack[-1].attributes.update(attributes)

    def finished(self) -> tuple[Span, ...]:
        """All recorded spans/events (completion order; events immediate)."""
        with self._lock:
            return tuple(self._finished)


class _NullSpan:
    """The shared no-op span handle: context manager and attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op, nothing is allocated.

    ``span()`` always returns the same module-level handle, so tracing an
    untraced run costs one attribute lookup and one call per instrumented
    site.  Call sites with non-trivial attribute computation should guard
    it behind ``if tracer.enabled``.
    """

    enabled = False

    def span(
        self, name: str, category: str = "", parent=None, **attributes
    ) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, category: str = "", **attributes) -> None:
        return None

    def add_attributes(self, **attributes) -> None:
        pass

    def finished(self) -> tuple[Span, ...]:
        return ()


NULL_TRACER = NullTracer()

_ambient: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The ambient tracer (the :data:`NULL_TRACER` no-op by default)."""
    return _ambient


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` as the ambient tracer for the dynamic extent."""
    global _ambient
    previous = _ambient
    _ambient = tracer
    try:
        yield tracer
    finally:
        _ambient = previous
