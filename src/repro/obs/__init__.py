"""Observability: span tracing, trace exporters, and run-provenance manifests.

See :mod:`repro.obs.tracer` for the span model, :mod:`repro.obs.exporters`
for the Chrome-trace/JSONL file formats, and :mod:`repro.obs.manifest` for
``manifest.json``.
"""

from repro.obs.exporters import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_FORMAT,
    RunManifest,
    fingerprint_of,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "use_tracer",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "RunManifest",
    "fingerprint_of",
    "MANIFEST_FORMAT",
    "MANIFEST_FILENAME",
]
