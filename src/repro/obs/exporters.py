"""Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and JSONL.

Two on-disk formats for one in-memory trace:

``write_chrome_trace``
    The Chrome trace-event format (``{"traceEvents": [...]}``) that
    ``chrome://tracing`` and https://ui.perfetto.dev load directly.  Spans
    become complete events (``"ph": "X"`` with microsecond ``ts``/``dur``),
    instant events become ``"ph": "i"``.  Process/thread ids are remapped
    to small dense integers in first-seen order so the output does not leak
    (and does not vary with) real pids — with an injected deterministic
    clock the whole file is byte-stable, which is what the golden test
    pins.
``write_jsonl``
    One span per line, all fields verbatim (raw pid/tid included) — the
    append-friendly form for downstream analysis and ``trace_inspect``.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
]


def _ordered(spans: Iterable[Span]) -> list[Span]:
    # Finished-order puts children before parents; start order reads
    # naturally in viewers and is stable (span ids break exact ties).
    return sorted(spans, key=lambda s: (s.start_s, s.span_id))


def chrome_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Map spans to Chrome trace-event dicts (timestamps in microseconds)."""
    ordered = _ordered(spans)
    pids: dict[int, int] = {}
    tids: dict[tuple[int, int], int] = {}
    events: list[dict] = []
    for span in ordered:
        pid = pids.setdefault(span.pid, len(pids) + 1)
        tid = tids.setdefault((span.pid, span.tid), len(tids) + 1)
        args = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event = {
            "name": span.name,
            "cat": span.category or "misc",
            "ph": "i" if span.is_event else "X",
            "ts": round(span.start_s * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if span.is_event:
            event["s"] = "t"  # thread-scoped instant
        else:
            event["dur"] = round((span.duration_s or 0.0) * 1e6, 3)
        events.append(event)
    return events


def write_chrome_trace(spans: Iterable[Span], path: str | Path) -> Path:
    """Write the Chrome trace file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def write_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    """Write one JSON object per span (raw fields); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for span in _ordered(spans):
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[Span]:
    """Load spans written by :func:`write_jsonl`."""
    spans: list[Span] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span(**json.loads(line)))
    return spans
