"""Joint optimization of adjacent programs — the paper's future work.

"As we expand the approach to surrounding computations, such as jointly
optimizing lgrad3, lgrad3t and adjacent code, the search space will grow,
and pruning it will be essential to feasibility."  (Section VIII)

:func:`concatenate_programs` merges a sequence of TCR programs (e.g. Lg3,
a pointwise scaling, Lg3t) into one program whose kernels are tuned
*together* — one SURF run over the product space, data staying resident
across all kernels — and :func:`tune_jointly` drives it, optionally with
the model-based pruning of :mod:`repro.tcr.pruning` to keep the grown
space tractable.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.autotune.tuner import Autotuner, TuneResult
from repro.errors import TCRError
from repro.surf.evaluator import ConfigurationEvaluator
from repro.tcr.decision import decide_search_space
from repro.tcr.program import TCRProgram
from repro.tcr.pruning import model_pruned_pool
from repro.tcr.space import TuningSpace
from repro.util.rng import spawn_rng

__all__ = ["concatenate_programs", "tune_jointly"]


def concatenate_programs(name: str, programs: Sequence[TCRProgram]) -> TCRProgram:
    """Merge programs into one (shared arrays by name, ops in sequence).

    Dimensions and array layouts must agree where names coincide — the
    point is that Lg3's outputs *are* Lg3t's inputs, so the merged program
    keeps them device-resident instead of round-tripping over PCIe.
    """
    if not programs:
        raise TCRError("nothing to concatenate")
    dims: dict[str, int] = {}
    arrays: dict[str, tuple[str, ...]] = {}
    operations = []
    for program in programs:
        for idx, size in program.dims.items():
            if dims.setdefault(idx, size) != size:
                raise TCRError(
                    f"index {idx!r} has extent {dims[idx]} in one program "
                    f"and {size} in another; rename before concatenating"
                )
        for arr, layout in program.arrays.items():
            if arr not in arrays:
                arrays[arr] = layout
                continue
            # Layout tuples are axis *labels*; what must agree across
            # programs is the concrete shape (Lg3 labels ur's axes
            # (e,i,j,k) while Lg3t reads it as (e,l,j,k) — same array).
            have = tuple(dims[i] for i in arrays[arr])
            want = tuple(program.dims[i] for i in layout)
            if have != want:
                raise TCRError(
                    f"array {arr!r} has shape {have} in one program and "
                    f"{want} in another; the programs disagree"
                )
        operations.extend(program.operations)
    return TCRProgram(name=name, dims=dims, arrays=arrays, operations=list(operations))


def tune_jointly(
    tuner: Autotuner,
    name: str,
    programs: Sequence[TCRProgram],
    prune: bool = False,
    min_parallelism: int = 1024,
) -> TuneResult:
    """Tune the concatenation of ``programs`` as one search problem.

    With ``prune=True`` the sampled pool is filtered by the static
    plausibility rules before SURF sees it (the conclusion's "pruning …
    will be essential to feasibility").
    """
    merged = concatenate_programs(name, programs)
    if not prune:
        return tuner.tune_program(merged)

    space = TuningSpace([decide_search_space(merged)])
    rng = spawn_rng(tuner.seed, "joint-pool", name, tuner.arch.name)
    pool = space.sample_pool(min(tuner.pool_size, space.size()), rng)
    pool = model_pruned_pool(
        merged, pool, tuner.arch, min_parallelism=min_parallelism
    )
    evaluator = ConfigurationEvaluator(
        [merged],
        tuner.model,
        seed=tuner.seed,
        noisy=tuner.noisy,
        include_transfer=tuner.include_transfer,
    )
    from repro.autotune.tuner import _make_searcher

    searcher = _make_searcher(
        tuner.searcher_kind, tuner.batch_size, tuner.max_evaluations, tuner.seed
    )
    result = searcher.search(
        pool,
        evaluator.evaluate_batch,
        wall_seconds=lambda: evaluator.simulated_wall_seconds,
    )
    best = result.best_config
    timing = tuner.model.program_timing(merged, best)
    return TuneResult(
        name=name,
        arch=tuner.arch,
        best_config=best,
        best_program=merged,
        timing=timing,
        search=result,
        space_size=space.size(),
        pool_size=len(pool),
        variant_count=1,
    )
