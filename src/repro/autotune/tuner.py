"""The Barracuda driver: tune a contraction (or TCR program) for one GPU.

Reproduces the Fig. 1 flow end to end:

1. **OCTOPI** — enumerate strength-reduction variants and lower each to a
   TCR program (skipped when the user hands in a TCR program directly, as
   for Nekbone's ``local_grad3``, which is already a fixed operation
   sequence).
2. **TCR** — run the GPU decision algorithm per variant, producing one
   :class:`~repro.tcr.space.ProgramSpace` each; union them into the
   :class:`~repro.tcr.space.TuningSpace`.
3. **SURF** (or a baseline searcher) — draw a configuration pool, search it
   against the simulator objective, return the champion with its timing
   breakdown and the simulated search wall-clock (Table II's "Search").
"""

from __future__ import annotations

import os
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.core.contraction import Contraction
from repro.core.pipeline import compile_contraction
from repro.errors import ConfigurationError, SearchError
from repro.gpusim.arch import GPUArch
from repro.gpusim.calibration import DEFAULT_GPU_CAL, GPUCalibration
from repro.gpusim.perfmodel import GPUPerformanceModel, ProgramTiming
from repro.gpusim.timing_table import ProgramTimingTable
from repro.obs.exporters import write_chrome_trace
from repro.obs.manifest import MANIFEST_FILENAME, RunManifest, fingerprint_of
from repro.obs.tracer import Tracer, get_tracer, use_tracer
from repro.surf.cache import CachedEvaluator, EvaluationCache, QuarantineStore
from repro.surf.checkpoint import CheckpointManager, SearchCheckpointer
from repro.surf.elastic import ElasticBatchEvaluator
from repro.surf.evaluator import BatchEvaluator, ConfigurationEvaluator
from repro.surf.exhaustive import ExhaustiveSearch
from repro.surf.faults import FaultInjectingEvaluator, FaultSpec
from repro.surf.parallel import ParallelBatchEvaluator
from repro.surf.pool import SpacePool, as_pool
from repro.surf.random_search import RandomSearch
from repro.surf.resilience import ResilientEvaluator
from repro.surf.search import SearchResult, SURFSearch
from repro.surf.separable import SeparableExhaustiveSearch
from repro.surf.shared import resolve_search_workers
from repro.surf.telemetry import SearchTelemetry
from repro.tcr.decision import BACKENDS, decide_search_space
from repro.tcr.program import TCRProgram
from repro.tcr.space import ProgramConfig, TuningSpace
from repro.util.rng import spawn_rng, stable_hash

__all__ = ["TuneResult", "Autotuner"]


@dataclass
class TuneResult:
    """Outcome of one autotuning run."""

    name: str
    arch: GPUArch
    best_config: ProgramConfig
    best_program: TCRProgram
    timing: ProgramTiming
    search: SearchResult
    space_size: int
    pool_size: int
    variant_count: int
    #: True when the run was served from the content-addressed result
    #: store (zero model evaluations; champion/history replayed bitwise).
    store_hit: bool = False

    @property
    def seconds(self) -> float:
        return self.timing.total_s

    @property
    def gflops(self) -> float:
        return self.timing.gflops

    @property
    def search_seconds(self) -> float:
        return self.search.simulated_wall_seconds

    def summary(self) -> str:
        return (
            f"{self.name} on {self.arch.name}: {self.gflops:.2f} GFlops "
            f"({self.seconds * 1e6:.1f} us), space={self.space_size}, "
            f"evals={self.search.evaluations}, "
            f"search={self.search_seconds:.1f}s (simulated)"
        )


def _retag_variant(config: ProgramConfig, variant_index: int) -> ProgramConfig:
    """Rewrite a sub-run config's variant index to the true OCTOPI index."""
    return ProgramConfig(
        variant_index=variant_index,
        kernels=config.kernels,
        global_id=config.global_id,
    )


def _make_searcher(
    kind: str,
    batch_size: int,
    max_evaluations: int,
    seed: int,
    tie_break: str = "lexsort",
    search_workers: int = 1,
    acquisition: str = "mean",
):
    if kind == "surf":
        return SURFSearch(
            batch_size=batch_size,
            max_evaluations=max_evaluations,
            seed=seed,
            tie_break=tie_break,
            search_workers=search_workers,
            acquisition=acquisition,
        )
    if kind == "random":
        return RandomSearch(
            batch_size=batch_size, max_evaluations=max_evaluations, seed=seed
        )
    if kind == "exhaustive":
        return ExhaustiveSearch(batch_size=batch_size)
    raise SearchError(
        f"unknown searcher {kind!r} (surf|random|exhaustive|sweep)"
    )


class Autotuner:
    """Tunes contractions/programs for a GPU architecture.

    Parameters
    ----------
    arch:
        Target device.
    searcher:
        ``"surf"`` (default), ``"random"``, ``"exhaustive"``, or
        ``"sweep"`` (separability-aware exhaustive optimum over timing
        tables — exact noise-free best in ``O(sum of kernel-space
        sizes)``).
    max_evaluations / batch_size:
        SURF's ``nmax`` and ``bs`` (paper defaults: 100 and a small batch).
    pool_size:
        Size of the sampled configuration pool ``Xp`` handed to the search
        (the full space is usually far too large to enumerate).
    max_variants:
        Optional cap on OCTOPI variant enumeration.
    seed:
        Master seed: pool sampling, surrogate, measurement noise.
    batch_parallelism:
        Concurrent lanes of the simulated tuning rig — affects only the
        simulated wall-clock accounting (Table II's "Search"), never the
        objective values.
    cache:
        Evaluation memoization.  ``True`` keeps an in-memory store shared
        by every ``tune_*`` call on this instance; a path string enables
        the persistent JSON-lines store as well.  ``None`` (default)
        consults the ``REPRO_EVAL_CACHE`` environment variable (a path;
        empty/unset = off), so batch drivers can switch it on fleet-wide.
    workers:
        Fan ``evaluate_batch`` out over this many worker threads
        (``parallel_executor="process"`` for processes).  Results are
        bitwise-identical to serial runs; ``None`` consults
        ``REPRO_EVAL_WORKERS``.
    elastic:
        Evaluate batches on an **elastic coordinator/worker pool** (see
        :mod:`repro.surf.elastic`): spawn this many local worker
        processes on a filesystem lease spool that external workers
        (``repro elastic-workers --spool DIR``) may join — late, briefly,
        or after being hard-killed — while the champion, history, rng
        stream, and checkpoints stay bitwise-identical to a serial run.
        ``0`` with a ``spool`` still enables elastic mode (external
        workers only; the coordinator evaluates inline as a last
        resort).  ``None`` consults ``REPRO_ELASTIC``.  Like
        ``search_workers``, the knob is store-key-, fingerprint-, and
        checkpoint-neutral.
    spool:
        The elastic lease-spool directory.  ``None`` consults
        ``REPRO_SPOOL``; when elastic workers are requested without a
        spool, a fresh temporary directory (or ``checkpoint_dir/spool``)
        is used.
    lease_ttl:
        Elastic claim lifetime, seconds: a worker that holds a lease
        past this deadline is presumed dead and its lease reclaimed.
    search_workers:
        Fan the *search core's* hot loops — per-refit forest fits, the
        full-pool predict pass, the odometer encode — out over this many
        worker processes sharing the pool through shared memory (see
        :mod:`repro.surf.shared`).  Orthogonal to ``workers`` (which
        parallelizes evaluation): results are bitwise-identical for every
        worker count, so the knob is result-store-neutral and absent from
        run fingerprints (a checkpoint may resume under a different
        count).  ``None`` consults ``REPRO_SEARCH_WORKERS`` (unset = 1,
        today's serial path byte for byte).
    acquisition:
        SURF's per-iteration ranking rule: ``"mean"`` (default, the
        paper's predicted-best rule) or ``"lcb"`` (lower confidence
        bound ``mean - kappa*std`` from one combined tree descent).
        Non-default values change the search course and are therefore
        fingerprinted and store-keyed.
    telemetry:
        Emit per-batch :class:`~repro.surf.telemetry.SearchTelemetry`
        records on every ``SearchResult`` (on by default; costs nothing
        measurable and never affects search decisions).
    fast_model:
        Precompute per-variant
        :class:`~repro.gpusim.timing_table.ProgramTimingTable`\\ s and
        score configurations by table lookup instead of re-running the
        scalar model per point.  Results are bitwise identical (the
        tables reproduce ``program_timing`` exactly, and measurement
        noise is layered on from the same per-point rng substream);
        it only shifts where the time goes — one vectorized pass up
        front instead of per-evaluation model runs.  ``None`` (default)
        consults ``REPRO_FAST_MODEL`` (unset/empty/"0" = off).
    sweep_full:
        With ``searcher="sweep"``, materialize the broadcast-summed
        totals of the entire product space per variant instead of the
        per-kernel argmin (same answer; bounded memory guard applies).
    faults:
        Deterministic fault injection (see :mod:`repro.surf.faults`): a
        :class:`FaultSpec`, a spec string for :meth:`FaultSpec.parse`, or
        ``None`` (default) to consult ``REPRO_FAULTS`` (empty/unset =
        none).  Enabling faults automatically enables the resilience
        layer.
    max_retries:
        Transient-failure retry budget of the resilience layer.
    resilient:
        Force the :class:`~repro.surf.resilience.ResilientEvaluator`
        retry/quarantine layer on (True) or off (False); ``None`` enables
        it exactly when faults are injected or a checkpoint directory is
        in use.
    checkpoint_dir:
        Run directory for fault-tolerant search state: ``state.json``
        (atomic per-batch search checkpoint) plus the persistent
        evaluation cache and quarantine set.  See
        :mod:`repro.surf.checkpoint`.
    resume:
        With ``checkpoint_dir``, restore a previous interrupted run's
        state and continue — bitwise-identical (history and best value)
        to an uninterrupted run with the same settings.  A fingerprint
        mismatch (changed seed/space/searcher/budget) raises
        :class:`~repro.errors.CheckpointError` rather than resuming
        unsafely; with no state file yet, the run simply starts fresh.
    tie_break:
        How SURF orders equal predictions within a batch: ``"lexsort"``
        (default, scale-independent randomized ties) or ``"jitter"`` (the
        historical additive-jitter scheme, kept for resuming/replaying
        runs recorded under it).  See :class:`~repro.surf.search.SURFSearch`.
    trace:
        Write a Chrome-trace (Perfetto-loadable) span trace of every
        ``tune_*`` call to this path, plus a run-provenance
        ``manifest.json`` next to it (and next to ``checkpoint_dir``
        when set).  Tracing is pure observability: results are bitwise
        identical with it on or off, and no wall-clock field enters any
        fingerprint or checkpoint comparison.
    result_store:
        Content-addressed whole-run memoization (see
        :mod:`repro.serve.store`): a :class:`ResultStore`, a store
        directory path, or ``None`` (default) to consult
        ``REPRO_RESULT_STORE``.  A request whose (DSL, arch,
        calibration, searcher-settings) fingerprints match a stored run
        is served that run's champion and full history — bitwise
        identical, zero model evaluations — and every completed miss is
        stored for the next requester.
    """

    def __init__(
        self,
        arch: GPUArch,
        searcher: str = "surf",
        max_evaluations: int = 100,
        batch_size: int = 10,
        pool_size: int = 3000,
        max_variants: int | None = None,
        seed: int = 0,
        calibration: GPUCalibration = DEFAULT_GPU_CAL,
        noisy: bool = True,
        include_transfer: bool = True,
        per_variant: bool = False,
        batch_parallelism: int = 1,
        cache: bool | str | Path | None = None,
        workers: int | None = None,
        elastic: int | None = None,
        spool: str | Path | None = None,
        lease_ttl: float = 30.0,
        search_workers: int | None = None,
        acquisition: str = "mean",
        telemetry: bool = True,
        parallel_executor: str = "thread",
        fast_model: bool | None = None,
        sweep_full: bool = False,
        faults: FaultSpec | str | None = None,
        max_retries: int = 2,
        resilient: bool | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        trace: str | Path | None = None,
        tie_break: str = "lexsort",
        result_store=None,
        backend: str = "loopnest",
    ) -> None:
        """``per_variant=True`` reproduces the paper's OCTOPI flow for
        multi-variant contractions: each algebraic version is autotuned
        with its own search budget ("OCTOPI generates and sends all
        versions to CUDA-CHiLL for autotuning") and the champions compete.
        This is what makes Eqn.(1)'s search the longest in Table II: 15
        variants × the per-version search cost.  The default (False)
        searches the union space with one budget."""
        self.arch = arch
        self.searcher_kind = searcher
        self.max_evaluations = max_evaluations
        self.batch_size = batch_size
        self.pool_size = pool_size
        self.max_variants = max_variants
        self.seed = seed
        self.model = GPUPerformanceModel(arch, calibration)
        self.noisy = noisy
        self.include_transfer = include_transfer
        self.per_variant = per_variant
        self.batch_parallelism = max(1, batch_parallelism)
        if cache is None:
            cache = os.environ.get("REPRO_EVAL_CACHE") or False
        self.cache_spec: bool | str | Path = cache
        if workers is None:
            workers = int(os.environ.get("REPRO_EVAL_WORKERS", "1") or 1)
        self.workers = max(1, workers)
        if elastic is None:
            elastic = int(os.environ.get("REPRO_ELASTIC", "0") or 0)
        self.elastic = max(0, elastic)
        if spool is None:
            spool = os.environ.get("REPRO_SPOOL") or None
        self.spool = Path(spool) if spool else None
        self.lease_ttl = float(lease_ttl)
        self.search_workers = resolve_search_workers(search_workers)
        self.acquisition = acquisition
        self.telemetry = telemetry
        self.parallel_executor = parallel_executor
        if fast_model is None:
            fast_model = os.environ.get("REPRO_FAST_MODEL", "") not in ("", "0")
        self.fast_model = bool(fast_model)
        self.sweep_full = sweep_full
        if faults is None:
            faults = os.environ.get("REPRO_FAULTS", "")
        if isinstance(faults, str):
            faults = FaultSpec.parse(faults, seed=seed)
        self.faults: FaultSpec = faults
        self.max_retries = max_retries
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.resume = resume
        self.trace = Path(trace) if trace else None
        self.tie_break = tie_break
        if resilient is None:
            resilient = self.faults.any() or self.checkpoint_dir is not None
        self.resilient = bool(resilient)
        # A checkpointed run persists its evaluation cache in the run
        # directory (unless the caller pointed the cache elsewhere), so a
        # resume can serve any work the killed batch already paid for.
        if self.checkpoint_dir is not None and not self.cache_spec:
            self.cache_spec = str(CheckpointManager(self.checkpoint_dir).eval_cache_path)
        self._cache_store: EvaluationCache | None = None
        self._quarantine_store: QuarantineStore | None = None
        if result_store is None:
            result_store = os.environ.get("REPRO_RESULT_STORE") or None
        self.result_store_spec = result_store
        self._result_store_obj = None
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.backend = backend

    # ------------------------------------------------------------------
    def _result_store(self):
        """The instance-wide result store, or None when disabled.

        Imported lazily: :mod:`repro.serve` wraps this module (the
        service drives Autotuners), so a top-level import would cycle.
        """
        if self.result_store_spec is None:
            return None
        if self._result_store_obj is None:
            from repro.serve.store import ResultStore

            spec = self.result_store_spec
            self._result_store_obj = (
                spec if isinstance(spec, ResultStore) else ResultStore(spec)
            )
        return self._result_store_obj

    # ------------------------------------------------------------------
    def _evaluation_cache(self) -> EvaluationCache | None:
        """The instance-wide cache store (shared across tune_* calls)."""
        if not self.cache_spec:
            return None
        if self._cache_store is None:
            path = None if self.cache_spec is True else self.cache_spec
            self._cache_store = EvaluationCache(path)
        return self._cache_store

    def _quarantine(self) -> QuarantineStore:
        """The instance-wide quarantine set (persistent with checkpoints)."""
        if self._quarantine_store is None:
            path = (
                CheckpointManager(self.checkpoint_dir).quarantine_path
                if self.checkpoint_dir is not None
                else None
            )
            self._quarantine_store = QuarantineStore(path)
        return self._quarantine_store

    def _build_evaluator(
        self,
        programs: list[TCRProgram],
        tables: list[ProgramTimingTable] | None = None,
    ) -> BatchEvaluator:
        """Stack the evaluation engine, innermost first:
        model -> fault injection -> cache -> retry/quarantine -> fan-out."""
        evaluator: BatchEvaluator = ConfigurationEvaluator(
            programs,
            self.model,
            seed=self.seed,
            noisy=self.noisy,
            include_transfer=self.include_transfer,
            batch_parallelism=self.batch_parallelism,
            tables=tables,
        )
        if self.faults.any():
            # Below the cache: a cached result models a rig that is not
            # re-run, so it cannot fault.
            evaluator = FaultInjectingEvaluator(evaluator, self.faults)
        store = self._evaluation_cache()
        if store is not None:
            evaluator = CachedEvaluator(evaluator, store)
        if self.resilient:
            evaluator = ResilientEvaluator(
                evaluator,
                max_retries=self.max_retries,
                quarantine=self._quarantine(),
            )
        if self.elastic_enabled:
            # The elastic pool replaces the in-process fan-out at the same
            # stack position; `workers` parallelism would be redundant
            # underneath it (lease scheduling already spreads the batch).
            evaluator = ElasticBatchEvaluator(
                evaluator,
                spool=self._spool_dir(),
                workers=self.elastic,
                lease_ttl=self.lease_ttl,
            )
        elif self.workers > 1:
            evaluator = ParallelBatchEvaluator(
                evaluator, workers=self.workers, executor=self.parallel_executor
            )
        return evaluator

    @property
    def elastic_enabled(self) -> bool:
        """True when evaluation runs on the coordinator/worker pool."""
        return self.elastic > 0 or self.spool is not None

    def _spool_dir(self) -> Path:
        """The run's lease-spool directory (created by the coordinator)."""
        if self.spool is not None:
            return self.spool
        if self.checkpoint_dir is not None:
            self.spool = self.checkpoint_dir / "spool"
        else:
            import tempfile

            self.spool = Path(tempfile.mkdtemp(prefix="repro-spool-"))
        return self.spool

    # ------------------------------------------------------------------
    @contextmanager
    def _observe(self, name: str):
        """Observation scope of one public ``tune_*`` call.

        With :attr:`trace` set (and no ambient tracer already active —
        e.g. the CLI installs one around workload loading so DSL-parse
        spans are captured), a fresh :class:`~repro.obs.tracer.Tracer`
        becomes ambient for the call; on exit the collected spans are
        exported as a Chrome trace, even when the run failed.  Without
        ``trace`` the ambient tracer (no-op by default) is used as-is.
        """
        ambient = get_tracer()
        created = None
        if self.trace is not None and not ambient.enabled:
            created = Tracer()
        tracer = created if created is not None else ambient
        try:
            with ExitStack() as stack:
                if created is not None:
                    stack.enter_context(use_tracer(created))
                stack.enter_context(
                    tracer.span(
                        "tune.run", category="tune",
                        workload=name, arch=self.arch.name,
                        searcher=self.searcher_kind, seed=self.seed,
                    )
                )
                yield tracer
        finally:
            if self.trace is not None:
                write_chrome_trace(tracer.finished(), self.trace)

    def run_manifest(self, name: str, programs: list[TCRProgram]) -> RunManifest:
        """The provenance manifest of a run over ``programs``."""
        from repro import __version__

        settings = {
            "max_evaluations": self.max_evaluations,
            "batch_size": self.batch_size,
            "pool_size": self.pool_size,
            "max_variants": self.max_variants,
            "noisy": self.noisy,
            "include_transfer": self.include_transfer,
            "per_variant": self.per_variant,
            "batch_parallelism": self.batch_parallelism,
            "workers": self.workers,
            "search_workers": self.search_workers,
            "fast_model": self.fast_model,
            "sweep_full": self.sweep_full,
            "faults": self.faults.describe(),
            "max_retries": self.max_retries,
            "resilient": self.resilient,
            "tie_break": self.tie_break,
        }
        # Only a non-default acquisition changes the search course; the
        # conditional key keeps store digests of existing runs stable.
        if self.acquisition != "mean":
            settings["acquisition"] = self.acquisition
        # The backend changes which spaces exist, so it is store-key
        # RELEVANT (never in RESULT_NEUTRAL_SETTINGS); the conditional key
        # keeps pre-TTGT loop-nest digests byte-stable.
        if self.backend != "loopnest":
            settings["backend"] = self.backend
        # Elastic evaluation is bitwise-identical to serial, so the knob is
        # provenance only: recorded when on (and store-key-neutral either
        # way), absent otherwise so serial manifests keep their bytes.
        if self.elastic_enabled:
            settings["elastic"] = self.elastic
        return RunManifest(
            name=name,
            package_version=__version__,
            arch=self.arch.name,
            arch_fingerprint=fingerprint_of(self.arch),
            calibration_fingerprint=fingerprint_of(self.model.cal),
            dsl_fingerprint=format(
                stable_hash("dsl", [p.to_text() for p in programs]), "016x"
            ),
            seed=self.seed,
            searcher=self.searcher_kind,
            settings=settings,
        )

    def _write_manifests(self, name: str, programs: list[TCRProgram]) -> None:
        """Write ``manifest.json`` next to the trace and the checkpoints."""
        destinations = []
        if self.trace is not None:
            destinations.append(self.trace.parent / MANIFEST_FILENAME)
        if self.checkpoint_dir is not None:
            destinations.append(self.checkpoint_dir / MANIFEST_FILENAME)
        if not destinations:
            return
        manifest = self.run_manifest(name, programs)
        for path in destinations:
            manifest.write(path)

    # ------------------------------------------------------------------
    def tune_contraction(self, contraction: Contraction) -> TuneResult:
        """Full pipeline: OCTOPI variants, then search across all of them."""
        with self._observe(contraction.name):
            compiled = compile_contraction(
                contraction, max_variants=self.max_variants
            )
            programs = [v.program for v in compiled.variants]
            self._write_manifests(contraction.name, programs)
            return self._tune_stored(contraction.name, programs)

    def tune_program(self, program: TCRProgram) -> TuneResult:
        """Tune a fixed TCR program (single variant)."""
        with self._observe(program.name):
            self._write_manifests(program.name, [program])
            return self._tune_stored(program.name, [program])

    def tune_programs(self, name: str, programs: list[TCRProgram]) -> TuneResult:
        """Tune an explicit set of alternative programs (custom variants)."""
        with self._observe(name):
            self._write_manifests(name, programs)
            return self._tune_stored(name, programs)

    # ------------------------------------------------------------------
    def _tune_stored(self, name: str, programs: list[TCRProgram]) -> TuneResult:
        """Serve from the result store when possible; store on a miss.

        The store key is derived from the run manifest — the same
        fingerprints the provenance layer writes — so "identical
        request" means exactly "a request whose search would replay
        bitwise".  A hit reconstructs the champion and full history from
        the stored record with **zero** model evaluations (the winning
        program's timing is recomputed deterministically from the
        champion config, which no noise stream touches).
        """
        store = self._result_store()
        if store is None:
            return self._tune(name, programs)
        from repro.serve.store import StoreKey, pack_tune_record, unpack_search

        key = StoreKey.from_manifest(self.run_manifest(name, programs))
        tracer = get_tracer()
        record = store.get(key)
        if record is not None:
            tracer.event(
                "store.hit", category="store",
                workload=name, digest=key.digest(),
            )
            search = unpack_search(record["search"])
            if self.telemetry:
                # A fresh empty telemetry: totals() reports 0 evaluations,
                # which is literally what this request cost.
                search.telemetry = SearchTelemetry()
            best = search.best_config
            best_program = programs[best.variant_index]
            return TuneResult(
                name=name,
                arch=self.arch,
                best_config=best,
                best_program=best_program,
                timing=self.model.program_timing(best_program, best),
                search=search,
                space_size=int(record["space_size"]),
                pool_size=int(record["pool_size"]),
                variant_count=int(record["variant_count"]),
                store_hit=True,
            )
        tracer.event(
            "store.miss", category="store", workload=name, digest=key.digest()
        )
        result = self._tune(name, programs)
        store.put(key, pack_tune_record(result))
        return result

    def _run_fingerprint(self, name: str, pool, space_size: int) -> dict:
        """Identity of a run for checkpoint-resume safety.

        Everything that changes the bitwise course of a search belongs
        here: resuming under a different fingerprint is refused.
        """
        fp = {
            "name": name,
            "arch": self.arch.name,
            "searcher": self.searcher_kind,
            "seed": self.seed,
            "max_evaluations": self.max_evaluations,
            "batch_size": self.batch_size,
            "space_size": space_size,
            "pool": as_pool(pool).fingerprint(),
            "noisy": self.noisy,
            "include_transfer": self.include_transfer,
            "faults": self.faults.describe(),
            "max_retries": self.max_retries,
        }
        # "jitter" reproduces the historical selection stream exactly, so
        # its fingerprint stays byte-compatible with states written before
        # the mode existed; any other mode changes the course and is named.
        if self.tie_break != "jitter":
            fp["tie_break"] = self.tie_break
        # Same conditional-key reasoning for the acquisition rule: "mean"
        # is the historical course.  search_workers is deliberately absent:
        # the parallel path is bitwise-identical to serial, so a run may be
        # resumed under any worker count.
        if self.acquisition != "mean":
            fp["acquisition"] = self.acquisition
        # The backend decides which kernel spaces exist at all; "loopnest"
        # is the historical course and stays unnamed for byte-compatibility.
        if self.backend != "loopnest":
            fp["backend"] = self.backend
        return fp

    def _checkpointer(
        self,
        checkpoint_dir: Path | None,
        name: str,
        pool,
        space_size: int,
        evaluator: BatchEvaluator | None,
    ) -> SearchCheckpointer | None:
        """Build the per-run checkpoint handle; load prior state on resume."""
        if checkpoint_dir is None:
            return None
        manager = CheckpointManager(
            checkpoint_dir, self._run_fingerprint(name, pool, space_size)
        )
        checkpointer = SearchCheckpointer(
            manager,
            extra=(
                (lambda: {"evaluator_counters": evaluator.counters()})
                if evaluator is not None
                else None
            ),
        )
        if self.resume:
            payload = manager.load()  # raises CheckpointError on mismatch
            if payload is not None:
                checkpointer.resume_state = payload.get("searcher")
                if evaluator is not None:
                    evaluator.restore_counters(
                        payload.get("extra", {}).get("evaluator_counters", {})
                    )
        return checkpointer

    # ------------------------------------------------------------------
    def _tune(
        self,
        name: str,
        programs: list[TCRProgram],
        checkpoint_dir: Path | None = None,
    ) -> TuneResult:
        if checkpoint_dir is None:
            checkpoint_dir = self.checkpoint_dir
        if self.per_variant and len(programs) > 1:
            return self._tune_per_variant(name, programs)
        tracer = get_tracer()
        spaces = [
            decide_search_space(
                p, variant_index=i, backend=self.backend, model=self.model
            )
            for i, p in enumerate(programs)
        ]
        tuning_space = TuningSpace(spaces)
        tables = None
        if self.fast_model or self.searcher_kind == "sweep":
            tables = []
            for p, s in zip(programs, spaces):
                with tracer.span(
                    "table.build", category="table", program=p.name
                ):
                    tables.append(ProgramTimingTable.build(self.model, p, s))
        if self.searcher_kind == "sweep":
            # The separable sweep reads the tables directly — no pool, no
            # evaluator; it optimizes the noise-free modeled time.
            searcher = SeparableExhaustiveSearch(
                tables,
                include_transfer=self.include_transfer,
                full_sweep=self.sweep_full,
                tuning_space=tuning_space,
            )
            pool = []
            checkpointer = self._checkpointer(
                checkpoint_dir, name, pool, tuning_space.size(), None
            )
            with tracer.span(
                "search.run", category="search",
                searcher=self.searcher_kind, workload=name,
            ):
                result = searcher.search(
                    telemetry=SearchTelemetry(), checkpointer=checkpointer
                )
        else:
            with tracer.span("space.pool", category="space") as sp:
                rng = spawn_rng(self.seed, "pool", name, self.arch.name)
                # Ids only — configs materialize lazily per evaluation batch.
                pool = SpacePool(
                    tuning_space,
                    tuning_space.sample_ids(
                        min(self.pool_size, tuning_space.size()), rng
                    ),
                )
                if tracer.enabled:
                    sp.set(pool=len(pool), space=tuning_space.size())
            # Wall-clock accounting defaults to sequential
            # (batch_parallelism=1): the paper's ~4 s/variant search times
            # for Lg3t imply one rig timing one variant at a time, with
            # batching used for model refresh cadence.
            evaluator = self._build_evaluator(programs, tables=tables)
            searcher = _make_searcher(
                self.searcher_kind, self.batch_size, self.max_evaluations,
                self.seed, tie_break=self.tie_break,
                search_workers=self.search_workers,
                acquisition=self.acquisition,
            )
            checkpointer = self._checkpointer(
                checkpoint_dir, name, pool, tuning_space.size(), evaluator
            )
            try:
                with tracer.span(
                    "search.run", category="search",
                    searcher=self.searcher_kind, workload=name,
                ):
                    result = searcher.search(
                        pool,
                        evaluator.evaluate_batch,
                        wall_seconds=lambda: evaluator.simulated_wall_seconds,
                        telemetry=SearchTelemetry(counters=evaluator.counters),
                        checkpointer=checkpointer,
                    )
            finally:
                # The elastic evaluator owns worker processes and a spool
                # shutdown marker; release them even when the search dies.
                close = getattr(evaluator, "close", None)
                if close is not None:
                    close()
        if not self.telemetry:
            result.telemetry = None
        best = result.best_config
        best_program = programs[best.variant_index]
        timing = self.model.program_timing(best_program, best)
        return TuneResult(
            name=name,
            arch=self.arch,
            best_config=best,
            best_program=best_program,
            timing=timing,
            search=result,
            space_size=tuning_space.size(),
            pool_size=len(pool),
            variant_count=len(programs),
        )

    def _tune_per_variant(self, name: str, programs: list[TCRProgram]) -> TuneResult:
        """Autotune every OCTOPI variant independently; champions compete."""
        results: list[TuneResult] = []
        tracer = get_tracer()
        for i, program in enumerate(programs):
            # Each variant's search state lives in its own subdirectory;
            # the quarantine set and eval cache stay at the run root
            # (they are instance-wide and config-keyed, so sharing is safe).
            sub_dir = (
                self.checkpoint_dir / f"v{i}"
                if self.checkpoint_dir is not None
                else None
            )
            with tracer.span("tune.variant", category="tune", variant=i):
                sub = self._tune(f"{name}_v{i}", [program], checkpoint_dir=sub_dir)
            # Re-tag the winning config — and every history entry — with the
            # real variant index: each sub-run sees its program as variant 0,
            # so without re-tagging the merged history would attribute every
            # evaluation to the first variant.
            cfg = _retag_variant(sub.best_config, i)
            search = SearchResult(
                searcher=sub.search.searcher,
                best_config=cfg,
                best_objective=sub.search.best_objective,
                history=[
                    (_retag_variant(c, i), y) for c, y in sub.search.history
                ],
                evaluations=sub.search.evaluations,
                simulated_wall_seconds=sub.search.simulated_wall_seconds,
                telemetry=sub.search.telemetry,
            )
            results.append(
                TuneResult(
                    name=sub.name,
                    arch=sub.arch,
                    best_config=cfg,
                    best_program=program,
                    timing=sub.timing,
                    search=search,
                    space_size=sub.space_size,
                    pool_size=sub.pool_size,
                    variant_count=1,
                )
            )
        winner = min(results, key=lambda r: r.seconds)
        total_wall = sum(r.search_seconds for r in results)
        total_evals = sum(r.search.evaluations for r in results)
        search = SearchResult(
            searcher=winner.search.searcher,
            best_config=winner.best_config,
            best_objective=winner.search.best_objective,
            history=[h for r in results for h in r.search.history],
            evaluations=total_evals,
            simulated_wall_seconds=total_wall,
            telemetry=SearchTelemetry.merged(r.search.telemetry for r in results)
            if self.telemetry
            else None,
        )
        return TuneResult(
            name=name,
            arch=self.arch,
            best_config=winner.best_config,
            best_program=winner.best_program,
            timing=winner.timing,
            search=search,
            space_size=sum(r.space_size for r in results),
            pool_size=sum(r.pool_size for r in results),
            variant_count=len(programs),
        )
