"""The Barracuda driver: tune a contraction (or TCR program) for one GPU.

Reproduces the Fig. 1 flow end to end:

1. **OCTOPI** — enumerate strength-reduction variants and lower each to a
   TCR program (skipped when the user hands in a TCR program directly, as
   for Nekbone's ``local_grad3``, which is already a fixed operation
   sequence).
2. **TCR** — run the GPU decision algorithm per variant, producing one
   :class:`~repro.tcr.space.ProgramSpace` each; union them into the
   :class:`~repro.tcr.space.TuningSpace`.
3. **SURF** (or a baseline searcher) — draw a configuration pool, search it
   against the simulator objective, return the champion with its timing
   breakdown and the simulated search wall-clock (Table II's "Search").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contraction import Contraction
from repro.core.pipeline import compile_contraction
from repro.errors import SearchError
from repro.gpusim.arch import GPUArch
from repro.gpusim.calibration import DEFAULT_GPU_CAL, GPUCalibration
from repro.gpusim.perfmodel import GPUPerformanceModel, ProgramTiming
from repro.surf.evaluator import ConfigurationEvaluator
from repro.surf.exhaustive import ExhaustiveSearch
from repro.surf.random_search import RandomSearch
from repro.surf.search import SearchResult, SURFSearch
from repro.tcr.decision import decide_search_space
from repro.tcr.program import TCRProgram
from repro.tcr.space import ProgramConfig, TuningSpace
from repro.util.rng import spawn_rng

__all__ = ["TuneResult", "Autotuner"]


@dataclass
class TuneResult:
    """Outcome of one autotuning run."""

    name: str
    arch: GPUArch
    best_config: ProgramConfig
    best_program: TCRProgram
    timing: ProgramTiming
    search: SearchResult
    space_size: int
    pool_size: int
    variant_count: int

    @property
    def seconds(self) -> float:
        return self.timing.total_s

    @property
    def gflops(self) -> float:
        return self.timing.gflops

    @property
    def search_seconds(self) -> float:
        return self.search.simulated_wall_seconds

    def summary(self) -> str:
        return (
            f"{self.name} on {self.arch.name}: {self.gflops:.2f} GFlops "
            f"({self.seconds * 1e6:.1f} us), space={self.space_size}, "
            f"evals={self.search.evaluations}, "
            f"search={self.search_seconds:.1f}s (simulated)"
        )


def _make_searcher(kind: str, batch_size: int, max_evaluations: int, seed: int):
    if kind == "surf":
        return SURFSearch(
            batch_size=batch_size, max_evaluations=max_evaluations, seed=seed
        )
    if kind == "random":
        return RandomSearch(
            batch_size=batch_size, max_evaluations=max_evaluations, seed=seed
        )
    if kind == "exhaustive":
        return ExhaustiveSearch(batch_size=batch_size)
    raise SearchError(f"unknown searcher {kind!r} (surf|random|exhaustive)")


class Autotuner:
    """Tunes contractions/programs for a GPU architecture.

    Parameters
    ----------
    arch:
        Target device.
    searcher:
        ``"surf"`` (default), ``"random"`` or ``"exhaustive"``.
    max_evaluations / batch_size:
        SURF's ``nmax`` and ``bs`` (paper defaults: 100 and a small batch).
    pool_size:
        Size of the sampled configuration pool ``Xp`` handed to the search
        (the full space is usually far too large to enumerate).
    max_variants:
        Optional cap on OCTOPI variant enumeration.
    seed:
        Master seed: pool sampling, surrogate, measurement noise.
    """

    def __init__(
        self,
        arch: GPUArch,
        searcher: str = "surf",
        max_evaluations: int = 100,
        batch_size: int = 10,
        pool_size: int = 3000,
        max_variants: int | None = None,
        seed: int = 0,
        calibration: GPUCalibration = DEFAULT_GPU_CAL,
        noisy: bool = True,
        include_transfer: bool = True,
        per_variant: bool = False,
    ) -> None:
        """``per_variant=True`` reproduces the paper's OCTOPI flow for
        multi-variant contractions: each algebraic version is autotuned
        with its own search budget ("OCTOPI generates and sends all
        versions to CUDA-CHiLL for autotuning") and the champions compete.
        This is what makes Eqn.(1)'s search the longest in Table II: 15
        variants × the per-version search cost.  The default (False)
        searches the union space with one budget."""
        self.arch = arch
        self.searcher_kind = searcher
        self.max_evaluations = max_evaluations
        self.batch_size = batch_size
        self.pool_size = pool_size
        self.max_variants = max_variants
        self.seed = seed
        self.model = GPUPerformanceModel(arch, calibration)
        self.noisy = noisy
        self.include_transfer = include_transfer
        self.per_variant = per_variant

    # ------------------------------------------------------------------
    def tune_contraction(self, contraction: Contraction) -> TuneResult:
        """Full pipeline: OCTOPI variants, then search across all of them."""
        compiled = compile_contraction(contraction, max_variants=self.max_variants)
        programs = [v.program for v in compiled.variants]
        return self._tune(contraction.name, programs)

    def tune_program(self, program: TCRProgram) -> TuneResult:
        """Tune a fixed TCR program (single variant)."""
        return self._tune(program.name, [program])

    def tune_programs(self, name: str, programs: list[TCRProgram]) -> TuneResult:
        """Tune an explicit set of alternative programs (custom variants)."""
        return self._tune(name, programs)

    # ------------------------------------------------------------------
    def _tune(self, name: str, programs: list[TCRProgram]) -> TuneResult:
        if self.per_variant and len(programs) > 1:
            return self._tune_per_variant(name, programs)
        spaces = [
            decide_search_space(p, variant_index=i) for i, p in enumerate(programs)
        ]
        tuning_space = TuningSpace(spaces)
        rng = spawn_rng(self.seed, "pool", name, self.arch.name)
        pool = tuning_space.sample_pool(
            min(self.pool_size, tuning_space.size()), rng
        )
        # Wall-clock accounting is sequential (batch_parallelism=1): the
        # paper's ~4 s/variant search times for Lg3t imply one rig timing one
        # variant at a time, with batching used for model refresh cadence.
        evaluator = ConfigurationEvaluator(
            programs,
            self.model,
            seed=self.seed,
            noisy=self.noisy,
            include_transfer=self.include_transfer,
        )
        searcher = _make_searcher(
            self.searcher_kind, self.batch_size, self.max_evaluations, self.seed
        )
        result = searcher.search(
            pool,
            evaluator.evaluate_batch,
            wall_seconds=lambda: evaluator.simulated_wall_seconds,
        )
        best = result.best_config
        best_program = programs[best.variant_index]
        timing = self.model.program_timing(best_program, best)
        return TuneResult(
            name=name,
            arch=self.arch,
            best_config=best,
            best_program=best_program,
            timing=timing,
            search=result,
            space_size=tuning_space.size(),
            pool_size=len(pool),
            variant_count=len(programs),
        )

    def _tune_per_variant(self, name: str, programs: list[TCRProgram]) -> TuneResult:
        """Autotune every OCTOPI variant independently; champions compete."""
        results: list[TuneResult] = []
        for i, program in enumerate(programs):
            sub = self._tune(f"{name}_v{i}", [program])
            # Re-tag the winning config with the real variant index so the
            # caller can recover which algebraic version won.
            cfg = ProgramConfig(
                variant_index=i,
                kernels=sub.best_config.kernels,
                global_id=sub.best_config.global_id,
            )
            results.append(
                TuneResult(
                    name=sub.name,
                    arch=sub.arch,
                    best_config=cfg,
                    best_program=program,
                    timing=sub.timing,
                    search=sub.search,
                    space_size=sub.space_size,
                    pool_size=sub.pool_size,
                    variant_count=1,
                )
            )
        winner = min(results, key=lambda r: r.seconds)
        total_wall = sum(r.search_seconds for r in results)
        total_evals = sum(r.search.evaluations for r in results)
        search = SearchResult(
            searcher=winner.search.searcher,
            best_config=winner.best_config,
            best_objective=winner.search.best_objective,
            history=[h for r in results for h in r.search.history],
            evaluations=total_evals,
            simulated_wall_seconds=total_wall,
        )
        return TuneResult(
            name=name,
            arch=self.arch,
            best_config=winner.best_config,
            best_program=winner.best_program,
            timing=winner.timing,
            search=search,
            space_size=sum(r.space_size for r in results),
            pool_size=sum(r.pool_size for r in results),
            variant_count=len(programs),
        )
