"""End-to-end autotuning: OCTOPI → TCR → SURF → best configuration."""

from repro.autotune.tuner import Autotuner, TuneResult

__all__ = ["Autotuner", "TuneResult"]
