"""Regeneration of the paper's tables and figures (paper-vs-measured)."""

from repro.reporting.experiments import (
    ExperimentReport,
    table1_report,
    table2_report,
    table3_report,
    table4_report,
    figure3_report,
    intext_report,
)

__all__ = [
    "ExperimentReport",
    "table1_report",
    "table2_report",
    "table3_report",
    "table4_report",
    "figure3_report",
    "intext_report",
]
