"""One function per paper table/figure, returning data + rendered text.

Every function runs the *whole* pipeline (OCTOPI -> TCR -> SURF -> simulator)
at configurable budgets, so the benchmark harness, the CLI and
EXPERIMENTS.md all share a single source of truth.  Paper-reported values
are carried alongside the measurements for direct comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autotune import Autotuner
from repro.apps.nekbone import NekbonePerformance, NekboneProblem
from repro.core.pipeline import compile_contraction
from repro.gpusim.arch import ALL_GPUS, C2050, GTX980, K20, GPUArch
from repro.gpusim.cpu import CPUPerformanceModel
from repro.gpusim.openacc import OpenACCModel
from repro.gpusim.perfmodel import GPUPerformanceModel
from repro.surf import ConfigurationEvaluator, ExhaustiveSearch, SURFSearch
from repro.tcr.decision import decide_search_space
from repro.tcr.space import TuningSpace
from repro.util.rng import spawn_rng
from repro.util.tables import format_bar_chart, format_table
from repro.workloads import TABLE1, eqn1, lg3, lg3t, nwchem_family, tce_ex

__all__ = [
    "ExperimentReport",
    "table1_report",
    "table2_report",
    "table3_report",
    "table4_report",
    "figure3_report",
    "intext_report",
]


@dataclass
class ExperimentReport:
    """Rendered text plus structured data for one experiment."""

    key: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


# ----------------------------------------------------------------------
# Table I — benchmark inventory
# ----------------------------------------------------------------------
def table1_report() -> ExperimentReport:
    rows = [(name, desc) for name, desc in TABLE1]
    text = format_table(
        ["Name", "Description"], rows, title="Table I: benchmarks used in this study"
    )
    return ExperimentReport("table1", "Benchmarks", text, {"rows": rows})


# ----------------------------------------------------------------------
# Table II — individual tensor contractions
# ----------------------------------------------------------------------
_TABLE2_PAPER = {
    "eqn1": {"speedup": 0.63, "GTX 980": 1.99, "Tesla K20": 1.42, "Tesla C2050": 1.89,
             "search": 3556.0},
    "lg3": {"speedup": 23.74, "GTX 980": 42.74, "Tesla K20": 41.52, "Tesla C2050": 42.47,
            "search": 324.8},
    "lg3t": {"speedup": 22.87, "GTX 980": 41.11, "Tesla K20": 38.38, "Tesla C2050": 34.99,
             "search": 356.9},
    "tce_ex": {"speedup": 29.77, "GTX 980": 42.72, "Tesla K20": 17.82, "Tesla C2050": 14.25,
               "search": 276.6},
}


def _tuner(arch: GPUArch, evals: int, pool: int, seed: int, per_variant: bool = False) -> Autotuner:
    return Autotuner(
        arch,
        max_evaluations=evals,
        batch_size=10,
        pool_size=pool,
        seed=seed,
        per_variant=per_variant,
    )


def table2_report(
    evals: int = 100, pool: int = 2500, seed: int = 1, archs=ALL_GPUS
) -> ExperimentReport:
    """Speedup over sequential Haswell, GFlops per GPU, SURF search time.

    Two speedup bases are reported because the paper's own accounting mixes
    them: its speedup column equals GFlops/seq-GFlops exactly (kernel-only,
    "device"), yet the Eqn.(1) discussion attributes the slowdown to PCIe
    copies (total time, "e2e").  We print both; the qualitative claims hold
    on the appropriate basis (Eqn.(1) loses end-to-end; the batched kernels
    win by >10x on device rate).  Contraction workloads are tuned per
    OCTOPI variant (the paper sends every version to autotuning), which is
    why Eqn.(1)'s 15 variants make its search the longest.
    """
    cpu = CPUPerformanceModel()
    rows = []
    data: dict[str, dict] = {}
    for wl in (eqn1(), lg3(), lg3t(), tce_ex()):
        seq = cpu.sequential_timing(wl.reference_program())
        per_arch: dict[str, tuple[float, float, float]] = {}
        for arch in archs:
            result = wl.tune(_tuner(arch, evals, pool, seed, per_variant=wl.kind == "contraction"))
            per_arch[arch.name] = (
                result.timing.device_gflops,
                result.search_seconds,
                result.timing.total_s,
            )
        lead = archs[0].name
        device_speedup = per_arch[lead][0] / seq.gflops if seq.gflops > 0 else float("nan")
        e2e_speedup = seq.total_s / per_arch[lead][2] if per_arch[lead][2] > 0 else float("nan")
        paper = _TABLE2_PAPER.get(wl.name, {})
        row = [
            wl.name,
            f"{device_speedup:.2f}x",
            f"{e2e_speedup:.2f}x",
            f"{paper.get('speedup', float('nan')):.2f}x",
        ]
        for arch in archs:
            g, s, _t = per_arch[arch.name]
            row += [g, paper.get(arch.name, float("nan")), f"{s:.0f}s"]
        rows.append(row)
        data[wl.name] = {
            "seq_gflops": seq.gflops,
            "speedup_device": device_speedup,
            "speedup_e2e": e2e_speedup,
            "per_arch": per_arch,
            "paper": paper,
        }
    headers = ["Benchmark", "Speedup(dev)", "Speedup(e2e)", "(paper)"]
    for arch in archs:
        headers += [f"{arch.name} GF", "(paper)", "Search"]
    text = format_table(headers, rows, title="Table II: individual tensor contractions")
    return ExperimentReport("table2", "Individual contractions", text, data)


# ----------------------------------------------------------------------
# Table III — Nekbone, OpenACC vs Barracuda
# ----------------------------------------------------------------------
_TABLE3_PAPER = {
    "Tesla K20": {"naive": 2.86, "optimized": 12.39, "barracuda": 36.47},
    "Tesla C2050": {"naive": 1.18, "optimized": 19.21, "barracuda": 34.65},
}


def table3_report(
    evals: int = 100,
    pool: int = 2500,
    seed: int = 1,
    elements: int = 512,
    n: int = 12,
) -> ExperimentReport:
    """Nekbone GFlops: naive/optimized OpenACC vs Barracuda (K20, C2050).

    PGI 14.3 cannot target the GTX 980, so — like the paper — only the
    Kepler and Fermi parts appear.
    """
    problem = NekboneProblem(elements=elements, n=n)
    perf = NekbonePerformance(problem)
    rows = []
    data: dict[str, dict] = {}
    for arch in (K20, C2050):
        tuner = _tuner(arch, evals, pool, seed)
        tuned3 = lg3(n, elements).tune(tuner)
        tuned3t = lg3t(n, elements).tune(tuner)
        naive = perf.openacc_gflops(arch, "naive")
        optimized = perf.openacc_gflops(arch, "optimized", tuned3, tuned3t)
        barracuda = perf.barracuda_gflops(arch, tuned3, tuned3t)
        paper = _TABLE3_PAPER[arch.name]
        rows.append(
            [arch.name, naive, paper["naive"], optimized, paper["optimized"],
             barracuda, paper["barracuda"]]
        )
        data[arch.name] = {
            "naive": naive,
            "optimized": optimized,
            "barracuda": barracuda,
            "paper": paper,
        }
    text = format_table(
        ["GPU", "ACC naive", "(paper)", "ACC optimized", "(paper)", "Barracuda", "(paper)"],
        rows,
        title="Table III: Nekbone, OpenACC vs Barracuda (GFlops)",
    )
    return ExperimentReport("table3", "Nekbone OpenACC comparison", text, data)


# ----------------------------------------------------------------------
# Table IV — OpenMP vs Barracuda
# ----------------------------------------------------------------------
_TABLE4_PAPER = {
    "nekbone": (7.79, 23.97, 35.70),
    "s1": (2.47, 2.61, 16.14),
    "d1": (3.90, 25.29, 115.37),
    "d2": (5.60, 14.90, 50.00),
}


def table4_report(
    evals: int = 100,
    pool: int = 2500,
    seed: int = 1,
    arch: GPUArch = GTX980,
    elements: int = 512,
    n_nekbone: int = 12,
    n_nwchem: int = 16,
) -> ExperimentReport:
    """Nekbone + NWChem: 1-core, 4-core OpenMP, and Barracuda GFlops."""
    cpu = CPUPerformanceModel()
    rows = []
    data: dict[str, dict] = {}

    problem = NekboneProblem(elements=elements, n=n_nekbone)
    perf = NekbonePerformance(problem, cpu)
    tuner = _tuner(arch, evals, pool, seed)
    tuned3 = lg3(n_nekbone, elements).tune(tuner)
    tuned3t = lg3t(n_nekbone, elements).tune(tuner)
    entries = [
        (
            "nekbone",
            perf.sequential_gflops(),
            perf.openmp_gflops(),
            perf.barracuda_gflops(arch, tuned3, tuned3t),
        )
    ]

    for family in ("s1", "d1", "d2"):
        kernels = nwchem_family(family, n_nwchem)
        seq_f = sum(w.program.flops() for w in kernels)
        seq_t = sum(
            cpu.sequential_timing(w.program, tuned=True).total_s for w in kernels
        )
        omp_t = sum(
            cpu.openmp_timing(w.program, tuned=True).total_s for w in kernels
        )
        results = [w.tune(_tuner(arch, evals, pool, seed)) for w in kernels]
        gpu_t = sum(r.timing.kernel_s for r in results)
        entries.append(
            (family, seq_f / seq_t / 1e9, seq_f / omp_t / 1e9, seq_f / gpu_t / 1e9)
        )

    for name, seq, omp, barr in entries:
        paper = _TABLE4_PAPER[name]
        rows.append([name, seq, paper[0], omp, paper[1], barr, paper[2]])
        data[name] = {
            "seq": seq,
            "openmp": omp,
            "barracuda": barr,
            "paper": paper,
        }
    text = format_table(
        ["Benchmark", "1 core", "(paper)", "OpenMP 4", "(paper)", "Barracuda", "(paper)"],
        rows,
        title=f"Table IV: OpenMP vs Barracuda ({arch.name}, GFlops)",
    )
    return ExperimentReport("table4", "OpenMP comparison", text, data)


# ----------------------------------------------------------------------
# Figure 3 — NWChem speedups over naive OpenACC
# ----------------------------------------------------------------------
def figure3_report(
    families=("d1", "d2", "s1"),
    archs=(C2050, K20),
    evals: int = 100,
    pool: int = 2500,
    seed: int = 1,
    n: int = 16,
) -> ExperimentReport:
    """Per-kernel speedup of Barracuda and optimized OpenACC over naive
    OpenACC, for each NWChem kernel on the Fermi and Kepler parts."""
    sections: list[str] = []
    data: dict[str, dict] = {}
    for family in families:
        kernels = nwchem_family(family, n)
        labels = [w.name for w in kernels]
        series: dict[str, list[float]] = {}
        fam_data: dict[str, dict[str, list[float]]] = {}
        for arch in archs:
            acc = OpenACCModel(GPUPerformanceModel(arch))
            barr, opt = [], []
            for wl in kernels:
                result = wl.tune(_tuner(arch, evals, pool, seed))
                naive_t = acc.naive_timing(wl.program).kernel_s
                opt_t = acc.optimized_timing(wl.program, result.best_config).kernel_s
                barr.append(naive_t / result.timing.kernel_s)
                opt.append(naive_t / opt_t)
            series[f"Barracuda {arch.generation}"] = barr
            series[f"OpenACC  {arch.generation}"] = opt
            fam_data[arch.name] = {"barracuda": barr, "openacc": opt}
        sections.append(
            format_bar_chart(
                labels,
                series,
                title=f"Figure 3 ({family.upper()}): speedup over naive OpenACC",
                unit="x",
            )
        )
        data[family] = fam_data
    return ExperimentReport(
        "figure3", "NWChem speedups over naive OpenACC", "\n\n".join(sections), data
    )


# ----------------------------------------------------------------------
# In-text claims
# ----------------------------------------------------------------------
def intext_report(
    evals: int = 100, pool: int = 2500, seed: int = 1
) -> ExperimentReport:
    """The quantitative claims made in the running text of the paper:

    * Eqn.(1) has 15 OCTOPI variants, 6 of them with equal (minimal) flops;
    * the minimal-flop versions differ by single-digit percent on a GTX 980;
    * Lg3t's tuning space has ~512,000 points; SURF's 100 evaluations take
      minutes, while full enumeration would take ~weeks;
    * SURF matches a brute-force search of the same pool.
    """
    lines: list[str] = []
    data: dict[str, object] = {}

    compiled = compile_contraction(eqn1().contraction)
    n_var = len(compiled.variants)
    minimal = compiled.minimal_flop_variants()
    lines.append(f"Eqn.(1) OCTOPI variants: {n_var} (paper: 15)")
    lines.append(f"Minimal-flop variants: {len(minimal)} (paper: 6)")
    data["eqn1_variants"] = n_var
    data["eqn1_minimal"] = len(minimal)

    # Spread among the equal-flop versions on the GTX 980.
    bests = []
    for variant in minimal:
        tuner = _tuner(GTX980, evals, pool, seed)
        r = tuner.tune_program(variant.program)
        bests.append(r.timing.kernel_s)
    spread = (max(bests) - min(bests)) / min(bests) * 100.0
    lines.append(
        f"Performance spread among equal-flop versions: {spread:.1f}% (paper: up to 9%)"
    )
    data["eqn1_spread_pct"] = spread

    # Lg3t space size and search-vs-enumeration wall-clock.
    wl = lg3t()
    space = TuningSpace([decide_search_space(wl.program)])
    tuner = _tuner(GTX980, evals, pool, seed)
    result = wl.tune(tuner)
    per_eval = result.search_seconds / max(1, result.search.evaluations)
    enumeration_days = space.size() * per_eval / 86400.0
    lines.append(f"Lg3t tuning space: {space.size()} points (paper: 512,000)")
    lines.append(
        f"SURF: {result.search.evaluations} evaluations in "
        f"{result.search_seconds / 60:.1f} simulated minutes (paper: ~7 min); "
        f"full enumeration would take ~{enumeration_days:.0f} days (paper: ~23)"
    )
    data["lg3t_space"] = space.size()
    data["surf_minutes"] = result.search_seconds / 60
    data["enumeration_days"] = enumeration_days

    # SURF vs brute force on one shared pool.
    program = wl.program
    ts = TuningSpace([decide_search_space(program)])
    shared_pool = ts.sample_pool(min(1500, ts.size()), spawn_rng(seed, "intext-pool"))
    model = GPUPerformanceModel(GTX980)
    surf_ev = ConfigurationEvaluator([program], model, seed=seed)
    surf_res = SURFSearch(batch_size=10, max_evaluations=evals, seed=seed).search(
        shared_pool, surf_ev.evaluate_batch
    )
    brute_ev = ConfigurationEvaluator([program], model, seed=seed)
    brute_res = ExhaustiveSearch(batch_size=50).search(shared_pool, brute_ev.evaluate_batch)
    gap = (surf_res.best_objective / brute_res.best_objective - 1.0) * 100.0
    lines.append(
        f"SURF best vs brute force over the same pool: {gap:+.1f}% "
        f"({surf_res.evaluations} vs {brute_res.evaluations} evaluations)"
    )
    data["surf_vs_brute_pct"] = gap

    return ExperimentReport(
        "intext", "In-text claims", "\n".join(lines), data
    )
