"""Large tensors from small blocks — the paper's scaling claim.

Section II: small-tensor contractions "provide a building block for
computations with large tensors in coupled cluster computations".  This
driver makes the claim concrete: a contraction over large extents is tiled
into fixed-size blocks; each block-pair contraction is exactly the
small-tensor kernel Barracuda tunes; the driver loops the tuned kernel
over the block grid with the data device-resident.

Functionally it computes a blocked matrix-multiply-like contraction
``C[i,j] += A[i,k] B[k,j]`` at large N via ``nb^3`` block GEMM-like kernel
invocations and is verified against the direct einsum.  For performance it
aggregates the tuned kernel's modeled time across the block grid, giving
the large-tensor rate the small-kernel tuning implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.tuner import Autotuner, TuneResult
from repro.core.contraction import Contraction
from repro.core.tensor import TensorRef
from repro.errors import SimulationError
from repro.gpusim.transfer import transfer_time

__all__ = ["BlockedContraction"]


@dataclass
class BlockedContraction:
    """A blocked ``C[i,j] = sum_k A[i,k] B[k,j]`` at extent ``n = nb * b``.

    ``b`` is the block extent (the paper's "small dimensions", e.g. 16) and
    ``nb`` the number of blocks per mode.
    """

    block: int = 16
    blocks_per_mode: int = 4

    def __post_init__(self) -> None:
        if self.block < 2 or self.blocks_per_mode < 1:
            raise SimulationError("need block >= 2 and >= 1 block per mode")

    @property
    def n(self) -> int:
        return self.block * self.blocks_per_mode

    def block_kernel(self) -> Contraction:
        """The per-block contraction (what Barracuda tunes)."""
        return Contraction(
            output=TensorRef("cblk", ("i", "j")),
            terms=(TensorRef("ablk", ("i", "k")), TensorRef("bblk", ("k", "j"))),
            dims={"i": self.block, "j": self.block, "k": self.block},
            name=f"block_mm_{self.block}",
        )

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------
    def contract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Blocked evaluation via repeated block-kernel application."""
        n, blk, nb = self.n, self.block, self.blocks_per_mode
        if a.shape != (n, n) or b.shape != (n, n):
            raise SimulationError(f"operands must be {n}x{n}")
        kernel = self.block_kernel()
        c = np.zeros((n, n))
        for bi in range(nb):
            for bj in range(nb):
                acc = np.zeros((blk, blk))
                for bk in range(nb):
                    ablk = a[bi * blk:(bi + 1) * blk, bk * blk:(bk + 1) * blk]
                    bblk = b[bk * blk:(bk + 1) * blk, bj * blk:(bj + 1) * blk]
                    acc += kernel.evaluate({"ablk": ablk, "bblk": bblk})
                c[bi * blk:(bi + 1) * blk, bj * blk:(bj + 1) * blk] = acc
        return c

    def reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    # ------------------------------------------------------------------
    # Performance path
    # ------------------------------------------------------------------
    def tune_block_kernel(self, tuner: Autotuner) -> TuneResult:
        return tuner.tune_contraction(self.block_kernel())

    def total_flops(self) -> int:
        return 2 * self.n**3

    def modeled_seconds(self, tuned: TuneResult) -> float:
        """Whole-problem time: block-kernel time x grid + one transfer each way.

        Blocks stay device-resident; each of the ``nb^3`` block contractions
        costs the tuned kernel time (launch included — exactly the regime
        where small-kernel launch overhead matters at scale).
        """
        nb = self.blocks_per_mode
        kernel_s = tuned.timing.kernel_s * nb**3
        arch = tuned.arch
        h2d = transfer_time(arch, 2 * self.n * self.n, calls=2)
        d2h = transfer_time(arch, self.n * self.n, calls=1)
        return kernel_s + h2d + d2h

    def modeled_gflops(self, tuned: TuneResult) -> float:
        return self.total_flops() / self.modeled_seconds(tuned) / 1e9
