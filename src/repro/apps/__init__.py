"""Application-level drivers: the Nekbone CG mini-app and the NWChem
CCSD(T)-triples-style driver (Table I's application rows)."""

from repro.apps.nekbone import (
    NekboneProblem,
    NekbonePerformance,
    cg_solve,
    gll_points_weights,
    derivative_matrix,
)
from repro.apps.nwchem_driver import TriplesDriver

__all__ = [
    "NekboneProblem",
    "NekbonePerformance",
    "cg_solve",
    "gll_points_weights",
    "derivative_matrix",
    "TriplesDriver",
]
