"""Nekbone: the spectral-element conjugate-gradient proxy application.

"Nekbone is a 3-dimensional spectral element proxy application derived
from Nek5000.  It performs a conjugate gradient loop that operates over a
sequence of tensor contractions recast as matrix multiplications, which
comprises 60% of the sequential execution time.  A problem size of
12x12x12 was used."  (Section VI)

This module provides both halves of that story:

* a **functional** mini-app — Gauss-Lobatto-Legendre differentiation
  matrices, a per-element SPD Helmholtz-like operator built from
  ``local_grad3`` / ``local_grad3t`` (exactly the Lg3/Lg3t TCR programs of
  :mod:`repro.workloads.spectral`), and an unpreconditioned CG solver that
  actually converges (tests assert it);
* a **performance** model — CG-iteration timing on the CPU (sequential and
  OpenMP, matmul-recast rates) and on a GPU with the tuned Lg3/Lg3t
  kernels, per-iteration PCIe transfers included ("our results include the
  time to transfer data back and forth"), plus the OpenACC variants for
  Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.arch import GPUArch, HASWELL
from repro.gpusim.cpu import CPUPerformanceModel
from repro.gpusim.openacc import OpenACCModel
from repro.gpusim.perfmodel import GPUPerformanceModel
from repro.gpusim.transfer import transfer_time
from repro.tcr.space import ProgramConfig
from repro.workloads.spectral import lg3, lg3t

__all__ = [
    "gll_points_weights",
    "derivative_matrix",
    "NekboneProblem",
    "cg_solve",
    "NekbonePerformance",
]

_B = 8


# ----------------------------------------------------------------------
# Spectral-element machinery (functional substrate)
# ----------------------------------------------------------------------
def gll_points_weights(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Lobatto-Legendre nodes and quadrature weights on [-1, 1].

    The nodes are the roots of ``(1 - x^2) P'_{n-1}(x)``; weights are
    ``2 / (n (n-1) P_{n-1}(x)^2)``.
    """
    if n < 2:
        raise SimulationError("GLL rule needs at least 2 points")
    # Interior nodes: roots of P'_{n-1}.
    legendre = np.polynomial.legendre.Legendre.basis(n - 1)
    interior = legendre.deriv().roots()
    x = np.concatenate(([-1.0], np.sort(interior), [1.0]))
    p = legendre(x)
    w = 2.0 / (n * (n - 1) * p**2)
    return x, w


def derivative_matrix(n: int) -> np.ndarray:
    """The GLL differentiation matrix D with (D u)_i = u'(x_i).

    Standard barycentric formula over the GLL nodes (Deville, Fischer &
    Mund, eqn. 2.4.9-ish): exact for polynomials of degree < n.
    """
    x, _ = gll_points_weights(n)
    legendre = np.polynomial.legendre.Legendre.basis(n - 1)
    p = legendre(x)
    d = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j:
                d[i, j] = p[i] / (p[j] * (x[i] - x[j]))
    d[0, 0] = -n * (n - 1) / 4.0
    d[-1, -1] = n * (n - 1) / 4.0
    return d


def local_grad3(d: np.ndarray, u: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(ur, us, ut)`` per element — the Lg3 computation, via einsum."""
    ur = np.einsum("il,eljk->eijk", d, u)
    us = np.einsum("jl,eilk->eijk", d, u)
    ut = np.einsum("kl,eijl->eijk", d, u)
    return ur, us, ut


def local_grad3t(
    d: np.ndarray, ur: np.ndarray, us: np.ndarray, ut: np.ndarray
) -> np.ndarray:
    """The transpose-accumulate Lg3t computation, via einsum."""
    u = np.einsum("li,eljk->eijk", d, ur)
    u += np.einsum("lj,eilk->eijk", d, us)
    u += np.einsum("lk,eijl->eijk", d, ut)
    return u


@dataclass
class NekboneProblem:
    """One Nekbone-style problem: E disconnected spectral elements.

    The operator is the SPD Helmholtz-like form
    ``A u = lambda * B u + D^T G D u`` per element, with ``B`` the diagonal
    GLL mass matrix and ``G`` positive diagonal geometric factors — the
    same contraction pattern Nekbone's ``ax`` kernel evaluates.
    """

    elements: int = 64
    n: int = 12
    lam: float = 0.1
    seed: int = 0
    d: np.ndarray = field(init=False, repr=False)
    mass: np.ndarray = field(init=False, repr=False)
    g: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.elements < 1 or self.n < 2:
            raise SimulationError("need >= 1 element and polynomial order >= 1")
        self.d = derivative_matrix(self.n)
        _x, w = gll_points_weights(self.n)
        self.mass = np.einsum("i,j,k->ijk", w, w, w)
        rng = np.random.default_rng(self.seed)
        # Positive geometric factors keep the operator SPD.
        self.g = 0.5 + rng.random((self.elements, self.n, self.n, self.n))

    @property
    def shape(self) -> tuple[int, int, int, int]:
        return (self.elements, self.n, self.n, self.n)

    def apply(self, u: np.ndarray) -> np.ndarray:
        """``A u`` — the CG matrix-vector product (the ``ax`` kernel)."""
        if u.shape != self.shape:
            raise SimulationError(f"field has shape {u.shape}, expected {self.shape}")
        ur, us, ut = local_grad3(self.d, u)
        w = local_grad3t(self.d, self.g * ur, self.g * us, self.g * ut)
        return self.lam * self.mass[None] * u + w

    def random_rhs(self, seed: int = 1) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.standard_normal(self.shape)

    def diagonal(self) -> np.ndarray:
        """diag(A), for Jacobi preconditioning.

        ``(D^T G D)_{ii} = sum_l D[l,i]^2 g[..l..]`` in each direction,
        plus the mass term.
        """
        d2 = self.d**2  # d2[l, i] = D[l,i]^2
        diag = np.einsum("li,eljk->eijk", d2, self.g)
        diag += np.einsum("lj,eilk->eijk", d2, self.g)
        diag += np.einsum("lk,eijl->eijk", d2, self.g)
        return self.lam * self.mass[None] + diag

    # -- cost bookkeeping ------------------------------------------------
    def contraction_flops_per_iteration(self) -> int:
        """Lg3 + Lg3t flops per CG iteration (one operator application)."""
        per = 2 * self.elements * self.n**4
        return 6 * per  # three directions each way

    def vector_flops_per_iteration(self) -> int:
        """Diagonal scalings, axpys and dots of one CG iteration."""
        npts = self.elements * self.n**3
        # g*grad (3), mass term (3), two dots (4), three axpys (6)
        return 16 * npts

    def field_bytes(self) -> int:
        return self.elements * self.n**3 * _B


def cg_solve(
    problem: NekboneProblem,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iterations: int = 200,
    jacobi: bool = False,
) -> tuple[np.ndarray, list[float]]:
    """(Optionally Jacobi-preconditioned) conjugate gradients.

    Returns ``(x, history)`` where history is the relative residual norm
    per iteration.  ``jacobi=True`` preconditions with ``diag(A)^-1``,
    which typically cuts the iteration count substantially on the
    randomly-weighted operator (Nekbone itself ships a diagonal
    preconditioner option).
    """
    inv_diag = 1.0 / problem.diagonal() if jacobi else None
    x = np.zeros_like(b)
    r = b.copy()
    z = r * inv_diag if jacobi else r
    p = z.copy()
    rz = float(np.vdot(r, z).real)
    norm_b = float(np.sqrt(np.vdot(b, b).real)) or 1.0
    history = [float(np.sqrt(np.vdot(r, r).real)) / norm_b]
    for _ in range(max_iterations):
        ap = problem.apply(p)
        alpha = rz / float(np.vdot(p, ap).real)
        x += alpha * p
        r -= alpha * ap
        history.append(float(np.sqrt(np.vdot(r, r).real)) / norm_b)
        if history[-1] < tol:
            break
        z = r * inv_diag if jacobi else r
        rz_new = float(np.vdot(r, z).real)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return x, history


# ----------------------------------------------------------------------
# Performance model (Tables III and IV)
# ----------------------------------------------------------------------
@dataclass
class NekbonePerformance:
    """CG-iteration timing for the strategies the paper compares."""

    problem: NekboneProblem
    cpu: CPUPerformanceModel = field(default_factory=lambda: CPUPerformanceModel(HASWELL))

    def _programs(self):
        return (
            lg3(self.problem.n, self.problem.elements).program,
            lg3t(self.problem.n, self.problem.elements).program,
        )

    def app_flops_per_iteration(self) -> int:
        return (
            self.problem.contraction_flops_per_iteration()
            + self.problem.vector_flops_per_iteration()
        )

    # -- CPU --------------------------------------------------------------
    def _cpu_iteration_seconds(self, openmp: bool) -> float:
        p3, p3t = self._programs()
        if openmp:
            contr = (
                self.cpu.openmp_timing(p3, matmul_recast=True).total_s
                + self.cpu.openmp_timing(p3t, matmul_recast=True).total_s
            )
            rate = (
                self.cpu.arch.clock_ghz
                * 1e9
                * self.cpu.cal.matmul_recast_eff
                * self.cpu.cal.omp_core_boost
                * self.cpu.arch.cores
                * self.cpu.cal.omp_efficiency
            )
        else:
            contr = (
                self.cpu.sequential_timing(p3, matmul_recast=True).total_s
                + self.cpu.sequential_timing(p3t, matmul_recast=True).total_s
            )
            rate = self.cpu.arch.clock_ghz * 1e9 * self.cpu.cal.matmul_recast_eff
        vector = self.problem.vector_flops_per_iteration() / rate
        return contr + vector

    def sequential_gflops(self) -> float:
        return self.app_flops_per_iteration() / self._cpu_iteration_seconds(False) / 1e9

    def openmp_gflops(self) -> float:
        return self.app_flops_per_iteration() / self._cpu_iteration_seconds(True) / 1e9

    # -- GPU --------------------------------------------------------------
    def _gpu_iteration_seconds(
        self, arch: GPUArch, kernel_seconds: float, solve_iterations: int = 100
    ) -> float:
        """Per-CG-iteration seconds: kernels + vector work + amortized PCIe.

        CG state lives on the device for the whole solve; the initial
        upload and final download amortize over ``solve_iterations``
        ("include the time to transfer data back and forth" — per solve,
        not per iteration).  Each iteration still returns two dot-product
        scalars to the host (latency only).
        """
        field = self.problem.elements * self.problem.n**3
        per_solve = transfer_time(arch, 3 * field, calls=3) + transfer_time(
            arch, field, calls=1
        )
        dots = 2 * arch.pcie_latency_us * 1e-6
        # Diagonal scaling + axpy/dot kernels: bandwidth-bound streaming over
        # ~8 field-sized arrays, plus a handful of small launches.
        vec_bytes = 8 * field * _B
        vec = vec_bytes / (arch.dram_bandwidth_gbs * arch.dram_efficiency * 1e9)
        vec += 6 * arch.kernel_launch_us * 1e-6
        return kernel_seconds + vec + dots + per_solve / solve_iterations

    def barracuda_gflops(self, arch: GPUArch, tuned_lg3, tuned_lg3t) -> float:
        """App rate with the autotuned Lg3/Lg3t kernels (TuneResults)."""
        kernels = tuned_lg3.timing.kernel_s + tuned_lg3t.timing.kernel_s
        total = self._gpu_iteration_seconds(arch, kernels)
        return self.app_flops_per_iteration() / total / 1e9

    def openacc_gflops(
        self,
        arch: GPUArch,
        strategy: str,
        tuned_lg3=None,
        tuned_lg3t=None,
    ) -> float:
        """App rate with OpenACC-generated contraction kernels.

        ``strategy`` is ``"naive"`` or ``"optimized"``; the optimized form
        needs the Barracuda-tuned configurations to borrow decompositions
        from (exactly how the paper built it).
        """
        model = OpenACCModel(GPUPerformanceModel(arch))
        p3, p3t = self._programs()
        if strategy == "naive":
            kernels = model.naive_timing(p3).kernel_s + model.naive_timing(p3t).kernel_s
        elif strategy == "optimized":
            if tuned_lg3 is None or tuned_lg3t is None:
                raise SimulationError("optimized OpenACC needs the tuned configs")
            kernels = (
                model.optimized_timing(p3, _config(tuned_lg3)).kernel_s
                + model.optimized_timing(p3t, _config(tuned_lg3t)).kernel_s
            )
        else:
            raise SimulationError(f"unknown OpenACC strategy {strategy!r}")
        total = self._gpu_iteration_seconds(arch, kernels)
        return self.app_flops_per_iteration() / total / 1e9


def _config(tuned) -> ProgramConfig:
    return tuned.best_config if hasattr(tuned, "best_config") else tuned
