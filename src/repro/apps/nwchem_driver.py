"""CCSD(T)-triples-style driver over the NWChem kernel families.

The paper's NWChem excerpts are the loop-driven kernels that accumulate the
perturbative-triples tensor ``t3``; a (T) energy evaluation sums all the
singles (s1) and doubles (d1, d2) contributions into ``t3`` and contracts
the result with a denominator.  This driver runs that composition
functionally (numpy) — giving the NWChem workloads an application-level
integration test — and aggregates per-kernel tuned timings into the
family-level rates that Table IV and Figure 3 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.workloads.nwchem import NWCHEM_FAMILIES, nwchem_family

__all__ = ["TriplesDriver"]


@dataclass
class TriplesDriver:
    """Evaluate a (T)-style triples correction from the kernel families."""

    n: int = 16
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise SimulationError("triples driver needs extent >= 2")
        self._rng = np.random.default_rng(self.seed)

    def amplitudes(self) -> dict[str, np.ndarray]:
        """Random t1/t2/v2 blocks shared across all kernels of a family."""
        n = self.n
        return {
            "t1": self._rng.standard_normal((n, n)),
            "t2_d1": self._rng.standard_normal((n, n, n, n)),
            "v2_s1": self._rng.standard_normal((n, n, n, n)),
            "v2_d1": self._rng.standard_normal((n, n, n, n)),
            "t2_d2": self._rng.standard_normal((n, n, n, n)),
            "v2_d2": self._rng.standard_normal((n, n, n, n)),
        }

    def _family_inputs(self, family: str, amps: dict[str, np.ndarray]):
        if family == "s1":
            return {"t1": amps["t1"], "v2": amps["v2_s1"]}
        if family == "d1":
            return {"t2": amps["t2_d1"], "v2": amps["v2_d1"]}
        if family == "d2":
            return {"t2": amps["t2_d2"], "v2": amps["v2_d2"]}
        raise SimulationError(f"unknown family {family!r}")

    def accumulate_t3(
        self, amps: dict[str, np.ndarray] | None = None
    ) -> dict[str, np.ndarray]:
        """Run every kernel of every family; returns per-kernel t3 blocks.

        Each kernel writes its own output layout; the blocks are kept
        separate (the real code's nine variants exist because callers want
        different layouts), keyed by kernel name.
        """
        amps = amps or self.amplitudes()
        blocks: dict[str, np.ndarray] = {}
        for family in NWCHEM_FAMILIES:
            inputs = self._family_inputs(family, amps)
            for wl in nwchem_family(family, self.n):
                blocks[wl.name] = wl.program.evaluate(inputs)
        return blocks

    def triples_energy(self, amps: dict[str, np.ndarray] | None = None) -> float:
        """A (T)-style scalar: denominator-weighted norm of the t3 sum.

        All nine kernels of a family compute the same tensor in different
        layouts, so the energy uses one representative per family (the
        ``*_1`` layout), mirroring how the real code consumes one block.
        """
        amps = amps or self.amplitudes()
        n = self.n
        eps = 1.0 + np.arange(n) / n  # synthetic orbital-energy ladder
        denom = (
            eps[:, None, None, None, None, None]
            + eps[None, :, None, None, None, None]
            + eps[None, None, :, None, None, None]
            + eps[None, None, None, :, None, None]
            + eps[None, None, None, None, :, None]
            + eps[None, None, None, None, None, :]
        )
        t3 = np.zeros((n,) * 6)
        for family in NWCHEM_FAMILIES:
            inputs = self._family_inputs(family, amps)
            wl = nwchem_family(family, self.n)[0]
            t3 += wl.program.evaluate(inputs)
        return float(np.sum(t3 * t3 / denom))

    # ------------------------------------------------------------------
    @staticmethod
    def family_gflops(tune_results) -> float:
        """Aggregate a family's nine tuned kernels into one rate.

        Total flops over total kernel time — how a batch of nine kernels
        executes back-to-back at the socket level (Table IV's per-family
        numbers).
        """
        flops = sum(r.timing.flops for r in tune_results)
        seconds = sum(r.timing.kernel_s for r in tune_results)
        if seconds <= 0:
            raise SimulationError("no kernel time to aggregate")
        return flops / seconds / 1e9
