"""Barracuda-repro: tensor-contraction autotuning for GPUs, reproduced.

A faithful Python reproduction of *Generating Efficient Tensor Contractions
for GPUs* (Nelson, Rivera, Balaprakash, Hall, Hovland, Jessup, Norris —
ICPP 2015): the OCTOPI tensor DSL and strength-reduction optimizer, the TCR
intermediate representation and GPU decision algorithm, the SURF
model-based search, and — in place of the paper's Fermi/Kepler/Maxwell
testbed — a calibrated GPU simulator with CPU/OpenMP/OpenACC baselines.

Quickstart::

    from repro import parse_contraction, Autotuner, GTX980

    c = parse_contraction('''
        dim i j k l m n = 10
        V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
    ''')
    result = Autotuner(GTX980).tune_contraction(c)
    print(result.summary())
"""

from repro.errors import (
    ReproError,
    DSLError,
    ContractionError,
    TCRError,
    SearchError,
    WorkloadError,
)
from repro.dsl import parse_program, parse_contraction, format_contraction
from repro.core.contraction import Contraction
from repro.core.tensor import TensorRef
from repro.core.pipeline import compile_dsl, compile_contraction, CompiledContraction
from repro.core.variants import Variant
from repro.tcr.program import TCRProgram, TCROperation
from repro.tcr.decision import decide_search_space
from repro.tcr.space import TuningSpace, ProgramConfig, KernelConfig
from repro.gpusim.arch import GTX980, K20, C2050, HASWELL, gpu_by_name
from repro.gpusim.perfmodel import GPUPerformanceModel
from repro.gpusim.cpu import CPUPerformanceModel
from repro.gpusim.openacc import OpenACCModel
from repro.surf import SURFSearch, RandomSearch, ExhaustiveSearch, ExtraTreesRegressor
from repro.autotune import Autotuner, TuneResult
from repro.serve import ResultStore, TuneRequest, TuningService, tune_contraction
from repro.workloads import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "DSLError",
    "ContractionError",
    "TCRError",
    "SearchError",
    "WorkloadError",
    "parse_program",
    "parse_contraction",
    "format_contraction",
    "Contraction",
    "TensorRef",
    "compile_dsl",
    "compile_contraction",
    "CompiledContraction",
    "Variant",
    "TCRProgram",
    "TCROperation",
    "decide_search_space",
    "TuningSpace",
    "ProgramConfig",
    "KernelConfig",
    "GTX980",
    "K20",
    "C2050",
    "HASWELL",
    "gpu_by_name",
    "GPUPerformanceModel",
    "CPUPerformanceModel",
    "OpenACCModel",
    "SURFSearch",
    "RandomSearch",
    "ExhaustiveSearch",
    "ExtraTreesRegressor",
    "Autotuner",
    "TuneResult",
    "ResultStore",
    "TuningService",
    "TuneRequest",
    "tune_contraction",
    "get_workload",
    "workload_names",
    "__version__",
]
