"""Functional execution of mapped kernels — the correctness oracle.

The performance model says how *fast* a configuration is; this module
checks that the configuration computes the *right thing*.  It interprets a
:class:`~repro.gpusim.kernel.KernelLaunch` exactly the way the generated
CUDA executes: iterate the grid, iterate the block, bind the mapped loop
indices, run the serial loops in the configured order with the configured
unroll structure (main loop in steps of ``u`` plus a remainder loop), and
accumulate through a scalar-replaced register before the final store.

It is deliberately a slow, obviously-correct interpreter: tests run it at
small extents against :func:`numpy.einsum` to certify that *every* point of
every kernel space computes the same tensor — which is what licenses the
fast einsum-based evaluation everywhere else.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.kernel import KernelLaunch, build_launch
from repro.tcr.program import TCRProgram
from repro.tcr.space import ONE, ProgramConfig

__all__ = ["execute_kernel", "execute_program"]

#: Refuse to interpret anything bigger than this many iteration points.
MAX_POINTS = 2_000_000


def _check_size(launch: KernelLaunch) -> None:
    points = launch.total_threads * launch.serial_iterations
    if points > MAX_POINTS:
        raise SimulationError(
            f"interpreter asked to execute {points} points (> {MAX_POINTS}); "
            "use small extents for functional validation"
        )


def execute_kernel(launch: KernelLaunch, env: Mapping[str, np.ndarray]) -> None:
    """Run one mapped kernel, accumulating into ``env[output]`` in place."""
    _check_size(launch)
    op = launch.operation
    cfg = launch.config
    out_arr = env[op.output.name]
    in_arrs = [env[r.name] for r in op.inputs]
    in_idx = [r.indices for r in op.inputs]
    out_idx = op.output.indices

    serial = launch.serial_loops
    red = set(op.reduction_indices)
    # The innermost serial reduction loop runs with the unroll structure.
    unrolled_pos = None
    for pos in range(len(serial) - 1, -1, -1):
        if serial[pos][0] in red:
            unrolled_pos = pos
            break
    # The accumulator (scalar replacement) is loaded at the deepest level
    # where the output element is fixed: above the trailing run of serial
    # loops that are all reductions.
    split = len(serial)
    for pos in range(len(serial) - 1, -1, -1):
        if serial[pos][0] in red:
            split = pos
        else:
            break

    def inner(pos: int, binding: dict[str, int], acc: list[float]) -> None:
        """Reduction loops below the accumulator, honoring the unroll shape."""
        if pos == len(serial):
            term = 1.0
            for arr, idx in zip(in_arrs, in_idx):
                term *= arr[tuple(binding[i] for i in idx)]
            acc[0] += term
            return
        index, extent = serial[pos]
        if pos == unrolled_pos and cfg.unroll > 1:
            u = cfg.unroll
            main = extent - extent % u
            v = 0
            while v < main:  # main unrolled loop: u copies of the body
                for step in range(u):
                    binding[index] = v + step
                    inner(pos + 1, binding, acc)
                v += u
            for step in range(main, extent):  # remainder loop
                binding[index] = step
                inner(pos + 1, binding, acc)
        else:
            for v in range(extent):
                binding[index] = v
                inner(pos + 1, binding, acc)
        del binding[index]

    def outer(pos: int, binding: dict[str, int]) -> None:
        """Serial loops above the accumulator (unmapped output indices)."""
        if pos == split:
            element = tuple(binding[i] for i in out_idx)
            acc = [out_arr[element]]  # scalar replacement: one load…
            inner(pos, binding, acc)
            out_arr[element] = acc[0]  # …and one store per element
            return
        index, extent = serial[pos]
        for v in range(extent):
            binding[index] = v
            outer(pos + 1, binding)
        del binding[index]

    grid = [(cfg.bx, launch.grid_dim[0]), (cfg.by, launch.grid_dim[1])]
    block = [(cfg.tx, launch.block_dim[0]), (cfg.ty, launch.block_dim[1])]
    for bxv, byv, txv, tyv in itertools.product(
        range(grid[0][1]), range(grid[1][1]), range(block[0][1]), range(block[1][1])
    ):
        binding: dict[str, int] = {}
        for (role, _extent), val in zip(grid + block, (bxv, byv, txv, tyv)):
            if role != ONE:
                binding[role] = val
        outer(0, binding)


def execute_program(
    program: TCRProgram,
    config: ProgramConfig,
    inputs: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Interpret a whole tuned program (all kernels, device-resident temps).

    Returns every written array (program outputs and temporaries), keyed by
    name, mirroring :meth:`TCRProgram.evaluate_all`.
    """
    if len(config.kernels) != len(program.operations):
        raise SimulationError(
            f"{len(config.kernels)} kernel configs for "
            f"{len(program.operations)} operations"
        )
    env: dict[str, np.ndarray] = {}
    for name in program.input_names:
        arr = np.asarray(inputs[name], dtype=np.float64)
        if arr.shape != program.array_shape(name):
            raise SimulationError(
                f"input {name!r} has shape {arr.shape}, expected "
                f"{program.array_shape(name)}"
            )
        env[name] = arr
    for op in program.operations:
        if op.output.name not in env:
            env[op.output.name] = np.zeros(program.array_shape(op.output.name))
    for op, kc in zip(program.operations, config.kernels):
        launch = build_launch(op, kc, program.dims)
        execute_kernel(launch, env)
    written = {op.output.name for op in program.operations}
    return {name: env[name] for name in written}
