"""GPU/CPU simulator substrate — the reproduction's stand-in for hardware.

The paper evaluates on an Intel Haswell and three NVIDIA GPUs (Tesla C2050,
Tesla K20, GTX 980).  None is available here, so this subpackage provides:

* :mod:`repro.gpusim.arch` — machine descriptions of those four devices;
* :mod:`repro.gpusim.kernel` — lowering of a (TCR operation, configuration)
  pair into a concrete kernel launch (grid/block shapes, per-thread work,
  access-pattern classification);
* :mod:`repro.gpusim.perfmodel` — the analytical timing model used as the
  autotuning objective;
* :mod:`repro.gpusim.timing_table` — the same timing model vectorized over
  whole kernel spaces (exact-parity batch evaluation and full-space sweeps);
* :mod:`repro.gpusim.executor` — a functional interpreter that executes the
  mapped kernel exactly as the generated CUDA would (correctness oracle);
* :mod:`repro.gpusim.transfer` — PCIe transfer model;
* :mod:`repro.gpusim.cpu` — sequential and OpenMP Haswell models;
* :mod:`repro.gpusim.openacc` — naive/optimized OpenACC strategy models;
* :mod:`repro.gpusim.calibration` — the constants tying it all to the
  paper's measured ranges.
"""

from repro.gpusim.arch import GPUArch, CPUArch, GTX980, K20, C2050, HASWELL, gpu_by_name
from repro.gpusim.gemm import GemmCal, gemm_calibration
from repro.gpusim.kernel import KernelLaunch, build_launch, build_launch_cached
from repro.gpusim.perfmodel import GPUPerformanceModel, ProgramTiming
from repro.gpusim.timing_table import KernelTimingTable, ProgramTimingTable
from repro.gpusim.transpose import TransposeCal, transpose_calibration
from repro.gpusim.executor import execute_kernel, execute_program
from repro.gpusim.cpu import CPUPerformanceModel
from repro.gpusim.openacc import OpenACCModel

__all__ = [
    "GPUArch",
    "CPUArch",
    "GTX980",
    "K20",
    "C2050",
    "HASWELL",
    "gpu_by_name",
    "GemmCal",
    "gemm_calibration",
    "TransposeCal",
    "transpose_calibration",
    "KernelLaunch",
    "build_launch",
    "build_launch_cached",
    "GPUPerformanceModel",
    "ProgramTiming",
    "KernelTimingTable",
    "ProgramTimingTable",
    "execute_kernel",
    "execute_program",
    "CPUPerformanceModel",
    "OpenACCModel",
]
