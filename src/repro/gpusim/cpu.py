"""Haswell baseline models: sequential C and 4-thread OpenMP.

Tables II and IV compare Barracuda against the host CPU, so the substitute
needs a CPU model with the same resolution as the GPU one: a roofline over
(a) an instruction-throughput estimate sensitive to innermost-loop strides
and auto-vectorizability, and (b) a traffic estimate with cache-resident
reuse.  Two regimes are modeled:

* ``tuned=False`` — the naive sequential loop nest a compiler gets from the
  TCR program (Table II's "sequential" baseline; spilled accumulators,
  partial vectorization at best);
* ``tuned=True`` — the application's own optimized CPU implementation
  (Nekbone's contractions recast as matrix multiplications, the NWChem
  authors' OpenMP kernels; Table IV's baselines).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.fusion import FusionPlan
from repro.gpusim.arch import CPUArch, HASWELL
from repro.gpusim.calibration import CPUCalibration, DEFAULT_CPU_CAL
from repro.tcr.memory import stride_of
from repro.tcr.program import TCROperation, TCRProgram

__all__ = ["CPUTiming", "CPUPerformanceModel"]

_B = 8  # bytes per double


@dataclass(frozen=True)
class CPUTiming:
    """Roofline breakdown of one CPU run."""

    compute_s: float
    memory_s: float
    flops: int

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s)

    @property
    def gflops(self) -> float:
        return self.flops / self.total_s / 1e9 if self.total_s > 0 else 0.0

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.memory_s else "memory"


def _merge(a: CPUTiming, b: CPUTiming) -> CPUTiming:
    return CPUTiming(
        compute_s=a.compute_s + b.compute_s,
        memory_s=a.memory_s + b.memory_s,
        flops=a.flops + b.flops,
    )


class CPUPerformanceModel:
    """Sequential / OpenMP timing model for one CPU."""

    def __init__(
        self, arch: CPUArch = HASWELL, calibration: CPUCalibration = DEFAULT_CPU_CAL
    ) -> None:
        self.arch = arch
        self.cal = calibration

    # ------------------------------------------------------------------
    # Per-operation ingredients
    # ------------------------------------------------------------------
    def _flops_per_cycle(
        self,
        op: TCROperation,
        dims: Mapping[str, int],
        tuned: bool,
        matmul_recast: bool = False,
    ) -> float:
        """Estimated DP flops retired per cycle for one loop nest.

        Naive code (what TCR's sequential C looks like) is latency-bound:
        roughly one flop per cycle while the data fits cache, roughly half
        that once the working set spills and the strided small-tensor
        accesses stop prefetching.  Tuned application kernels are calibrated
        as a flat, better rate; the matmul-recast path (Nekbone) better
        still.  The ceilings live in :class:`CPUCalibration`.
        """
        if matmul_recast:
            return self.cal.matmul_recast_eff
        if tuned:
            return self.cal.tuned_eff
        eff = self.cal.naive_eff
        working_set = sum(r.size(dims) for r in op.inputs) * _B
        working_set += op.output.size(dims) * _B
        if working_set > self.arch.l2_bytes:
            eff *= self.cal.naive_spill_penalty
        inner = (op.output.indices + op.reduction_indices)[-1]
        strided = any(
            stride_of(r, inner, dims) not in (0, 1) for r in op.inputs
        )
        if strided:
            eff *= self.cal.naive_strided_penalty
        return eff

    def _traffic_bytes(
        self,
        op: TCROperation,
        dims: Mapping[str, int],
        scalarized: Iterable[str] = (),
    ) -> float:
        """DRAM bytes for one loop nest, assuming cache-filtered reuse.

        Each distinct array streams through once (the L2/L3 absorbs the
        re-reads these small tensors generate); outputs pay write-allocate.
        Scalarized temporaries (fusion) cost nothing.
        """
        skip = set(scalarized)
        total = 0.0
        for ref in op.inputs:
            if ref.name in skip:
                continue
            # Each distinct input streams through DRAM once; the cache
            # hierarchy absorbs the re-reads these small tensors generate.
            total += ref.size(dims) * _B
        if op.output.name not in skip:
            total += 2.0 * op.output.size(dims) * _B  # read-modify-write
        return total

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def sequential_timing(
        self,
        program: TCRProgram,
        fusion: FusionPlan | None = None,
        tuned: bool = False,
        matmul_recast: bool = False,
    ) -> CPUTiming:
        """Single-core run of a whole TCR program."""
        scalarized = fusion.scalarized_temporaries() if fusion else ()
        timing = CPUTiming(0.0, 0.0, 0)
        bw = self.arch.dram_bandwidth_gbs * 1e9 * self.cal.single_core_bw_fraction
        for op in program.operations:
            flops = op.flops(program.dims)
            fpc = self._flops_per_cycle(op, program.dims, tuned, matmul_recast)
            compute = flops / (self.arch.clock_ghz * 1e9 * fpc)
            memory = self._traffic_bytes(op, program.dims, scalarized) / bw
            timing = _merge(timing, CPUTiming(compute, memory, flops))
        return timing

    def openmp_timing(
        self,
        program: TCRProgram,
        fusion: FusionPlan | None = None,
        tuned: bool = True,
        matmul_recast: bool = False,
        threads: int | None = None,
    ) -> CPUTiming:
        """OpenMP run: outermost parallel loop over ``threads`` cores.

        The hand-written OpenMP variants (the paper's comparison points)
        pick a vectorization-friendly loop order, modeled by the
        ``omp_core_boost`` calibration factor; scaling is capped by the
        outer loop's extent and by the shared memory bus.
        """
        threads = threads or self.arch.cores
        scalarized = fusion.scalarized_temporaries() if fusion else ()
        timing = CPUTiming(0.0, 0.0, 0)
        bw = self.arch.dram_bandwidth_gbs * 1e9
        for op in program.operations:
            flops = op.flops(program.dims)
            fpc = self._flops_per_cycle(op, program.dims, tuned, matmul_recast)
            fpc *= self.cal.omp_core_boost
            outer_extent = program.dims[op.output.indices[0]]
            ways = min(threads, outer_extent)
            speedup = ways * self.cal.omp_efficiency
            compute = flops / (self.arch.clock_ghz * 1e9 * fpc * speedup)
            memory = self._traffic_bytes(op, program.dims, scalarized) / bw
            fork_join = 5e-6
            timing = _merge(
                timing, CPUTiming(compute + fork_join, memory, flops)
            )
        return timing

    def sequential_gflops(self, program: TCRProgram, **kw) -> float:
        return self.sequential_timing(program, **kw).gflops

    def openmp_gflops(self, program: TCRProgram, **kw) -> float:
        return self.openmp_timing(program, **kw).gflops
