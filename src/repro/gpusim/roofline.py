"""Roofline-style diagnosis of tuned kernels.

A small analysis layer over the timing model: for a kernel launch it
reports arithmetic intensity, the compute and bandwidth ceilings of the
target device, which resource binds, and the headroom to the roof —
the numbers a performance engineer would pull from a profiler to explain
*why* a configuration won.  Used by the docs/examples and by tests that
pin the model's physical consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.arch import GPUArch
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.perfmodel import GPUPerformanceModel, KernelTiming

__all__ = ["RooflinePoint", "analyze_kernel", "analyze_program"]

_B = 8


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position against its device's roofline."""

    arch: str
    flops: int
    dram_bytes: float
    intensity: float            # flops per DRAM byte
    achieved_gflops: float
    compute_roof_gflops: float
    bandwidth_roof_gflops: float  # intensity * effective bandwidth
    bound: str                  # "compute" | "memory" | "overhead"
    efficiency: float           # achieved / applicable roof

    def describe(self) -> str:
        return (
            f"{self.arch}: {self.achieved_gflops:.1f} GF at "
            f"{self.intensity:.2f} flops/B -> {self.bound}-bound, "
            f"{self.efficiency:.0%} of the {min(self.compute_roof_gflops, self.bandwidth_roof_gflops):.0f} GF roof"
        )


def _dram_bytes(model: GPUPerformanceModel, launch: KernelLaunch) -> float:
    """Estimate the DRAM traffic the timing model charges this launch."""
    # Reconstruct from the memory-time component at DRAM bandwidth; the
    # split between DRAM and L2 is internal, so use the conservative view:
    # everything the kernel moves, priced at effective DRAM speed.
    t_m = model._memory_time(launch)
    eff_bw = model.arch.dram_bandwidth_gbs * model.arch.dram_efficiency * 1e9
    return t_m * eff_bw


def analyze_kernel(
    model: GPUPerformanceModel, launch: KernelLaunch
) -> RooflinePoint:
    """Place one launch on its device's roofline."""
    arch: GPUArch = model.arch
    timing: KernelTiming = model.kernel_timing(launch)
    bytes_moved = max(_dram_bytes(model, launch), 1e-9)
    intensity = launch.flops / bytes_moved
    eff_bw = arch.dram_bandwidth_gbs * arch.dram_efficiency
    bw_roof = intensity * eff_bw
    compute_roof = arch.peak_dp_gflops
    roof = min(bw_roof, compute_roof)
    achieved = timing.gflops
    overhead = timing.launch_s / timing.total_s
    if overhead > 0.5:
        bound = "overhead"
    else:
        bound = timing.bound
    return RooflinePoint(
        arch=arch.name,
        flops=launch.flops,
        dram_bytes=bytes_moved,
        intensity=intensity,
        achieved_gflops=achieved,
        compute_roof_gflops=compute_roof,
        bandwidth_roof_gflops=bw_roof,
        bound=bound,
        efficiency=min(1.0, achieved / roof) if roof > 0 else 0.0,
    )


def analyze_program(model, program, config) -> list[RooflinePoint]:
    """Roofline points for every kernel of a tuned program."""
    from repro.gpusim.kernel import build_launch

    points = []
    for op, kc in zip(program.operations, config.kernels):
        launch = build_launch(op, kc, program.dims)
        points.append(analyze_kernel(model, launch))
    return points
