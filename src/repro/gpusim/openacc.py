"""OpenACC code-generation strategy models (Table III, Figure 3).

The paper builds two OpenACC versions of each computation by replacing
Barracuda's CUDA constructs with directives:

* **Naive** — "simply includes parallelization directives but no guidance
  on parallelization decomposition".  Modeled as the PGI-14.3-style default
  mapping: gangs over the outermost output loop, vector over the innermost
  output loop, nothing in between, default serial order, no unrolling — and
  crucially *no scalar replacement*: OpenACC's ``private`` "does not
  produce the desired result", so the accumulator bounces through global
  memory every reduction iteration.  This is why naive OpenACC loses to
  sequential CPU code in Table III.
* **Optimized** — "adds directives on thread and block decomposition that
  were derived by Barracuda and performs scalar replacement on the output".
  Modeled as the tuned decomposition with default serial order and no
  unroll, times a directive-compiler efficiency factor with a deterministic
  per-kernel wobble (which is how it "sometimes exceeds" Barracuda on
  individual kernels, as in Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.kernel import build_launch_cached
from repro.gpusim.perfmodel import GPUPerformanceModel, ProgramTiming
from repro.gpusim.transfer import program_transfer_time
from repro.tcr.program import TCROperation, TCRProgram
from repro.tcr.space import ONE, KernelConfig, ProgramConfig
from repro.util.rng import stable_uniform

__all__ = ["OpenACCModel"]

#: Generations the 2014 PGI compiler can target (it "does not yet generate
#: code for the GTX 980").
SUPPORTED_GENERATIONS = ("Fermi", "Kepler")


def naive_kernel_config(op: TCROperation) -> KernelConfig:
    """The default directive mapping for one loop nest.

    PGI-style: vector over the two innermost parallel loops, gangs over the
    two outermost — no analysis of memory order, no unrolling.
    """
    out = op.output.indices
    tx = out[-1]
    ty = out[-2] if len(out) >= 2 and out[-2] != tx else ONE
    bx = out[0] if out[0] not in (tx, ty) else ONE
    by = out[1] if len(out) >= 4 and out[1] not in (tx, ty, bx) else ONE
    mapped = {v for v in (tx, ty, bx, by) if v != ONE}
    serial = tuple(
        i for i in op.output.indices + op.reduction_indices if i not in mapped
    )
    return KernelConfig(tx=tx, ty=ty, bx=bx, by=by, serial_order=serial, unroll=1)


def optimized_kernel_config(op: TCROperation, tuned: KernelConfig) -> KernelConfig:
    """Barracuda's decomposition expressed as directives (no unroll/permute)."""
    mapped = set(tuned.mapped)
    serial = tuple(
        i for i in op.output.indices + op.reduction_indices if i not in mapped
    )
    return KernelConfig(
        tx=tuned.tx,
        ty=tuned.ty,
        bx=tuned.bx,
        by=tuned.by,
        serial_order=serial,
        unroll=1,
    )


@dataclass
class OpenACCModel:
    """Timing of OpenACC-generated code on one GPU architecture."""

    model: GPUPerformanceModel
    #: mean efficiency of PGI-generated kernels relative to tuned CUDA
    directive_efficiency: float = 0.80
    #: deterministic per-kernel spread around that mean
    efficiency_spread: float = 0.25
    #: extra handicap of the un-guided mapping (scheduling, implicit sync,
    #: firstprivate traffic) on top of the missing scalar replacement
    naive_penalty: float = 0.45

    @property
    def supported(self) -> bool:
        return self.model.arch.generation in SUPPORTED_GENERATIONS

    def _kernel_efficiency(self, program: TCRProgram, op_index: int) -> float:
        wobble = 2.0 * stable_uniform(
            "openacc", self.model.arch.name, program.name, op_index
        ) - 1.0
        return self.directive_efficiency * (1.0 + self.efficiency_spread * wobble)

    def _program_timing(
        self,
        program: TCRProgram,
        configs: list[KernelConfig],
        scalar_replacement: bool,
        extra_factor: float = 1.0,
    ) -> ProgramTiming:
        kernels = []
        for i, (op, kc) in enumerate(zip(program.operations, configs)):
            launch = build_launch_cached(op, kc, program.dims)
            kernels.append(
                self.model.kernel_timing(
                    launch,
                    scalar_replacement=scalar_replacement,
                    efficiency_factor=self._kernel_efficiency(program, i) * extra_factor,
                )
            )
        h2d_elems, d2h_elems = program.transfer_elements()
        h2d, d2h = program_transfer_time(
            self.model.arch, h2d_elems, d2h_elems, h2d_calls=len(program.input_names)
        )
        return ProgramTiming(
            h2d_s=h2d, d2h_s=d2h, kernels=tuple(kernels), flops=program.flops()
        )

    def naive_timing(self, program: TCRProgram) -> ProgramTiming:
        configs = [naive_kernel_config(op) for op in program.operations]
        return self._program_timing(
            program, configs, scalar_replacement=False,
            extra_factor=self.naive_penalty,
        )

    def optimized_timing(
        self, program: TCRProgram, tuned: ProgramConfig
    ) -> ProgramTiming:
        configs = [
            optimized_kernel_config(op, kc)
            for op, kc in zip(program.operations, tuned.kernels)
        ]
        return self._program_timing(program, configs, scalar_replacement=True)
