"""Calibration constants for the simulator's behavioural knobs.

:mod:`repro.gpusim.arch` holds datasheet facts; this module holds the
*model* parameters — efficiency ceilings, ILP curves, penalty shapes —
tuned once so that the paper's headline measurements come out with the
right shape (Tables II–IV, Figure 3).  Keeping them in one frozen dataclass
makes the calibration auditable and lets tests pin down exactly what was
fitted versus what is physics.

Calibration targets (paper values):

* Eqn.(1): ~2 GFlops on GTX 980, *slower than one Haswell core* (0.63x) —
  transfer/launch overheads dominate a 60 kflop problem.
* Lg3 / Lg3t (batched 12^3 spectral elements): 35–43 GFlops on all three
  GPUs, >20x over sequential.
* TCE ex: ~43 GFlops on GTX 980 but only ~18 / ~14 on K20 / C2050 (N=16
  temporaries stress the older parts' smaller L2s).
* NWChem: s1 7–20 GFlops, d1 20–125, d2 9–53; naive OpenACC slower than
  sequential; optimized OpenACC competitive but usually behind autotuning.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUCalibration", "CPUCalibration", "DEFAULT_GPU_CAL", "DEFAULT_CPU_CAL"]


@dataclass(frozen=True)
class GPUCalibration:
    """Behavioural constants of the GPU timing model."""

    #: ceiling on double-precision pipe utilisation for perfectly tuned code
    compute_efficiency_max: float = 0.88
    #: fraction of peak issue achieved with no unrolling (loop-carried
    #: accumulation dependence limits ILP)
    ilp_base: float = 0.55
    #: unroll factor at which the ILP benefit saturates
    ilp_saturation: int = 6
    #: relative cost of loop-control instructions per innermost iteration
    loop_overhead: float = 0.35
    #: index-arithmetic ops per inner iteration that unrolling cannot remove
    addr_base: float = 2.0
    #: index-arithmetic ops per iteration amortized away by unrolling (CSE)
    addr_loop: float = 6.0
    #: exponent softening the latency-hiding occupancy penalty
    latency_exponent: float = 0.7
    #: fraction of L2 considered usable before spilling to DRAM
    l2_usable_fraction: float = 0.8
    #: stores allocate lines (read-for-ownership) — doubles cold store bytes
    write_allocate: bool = True
    #: amplitude of the deterministic per-configuration model perturbation
    systematic_noise: float = 0.03
    #: relative std-dev of one timing repetition (averaged over repetitions)
    measurement_noise: float = 0.02
    #: per-variant autotuning evaluation overhead: nvcc + Orio bookkeeping,
    #: seconds (the dominant term of the paper's ~4 s per variant)
    compile_seconds: float = 2.8
    #: timing repetitions per empirical evaluation (the paper uses 100)
    repetitions: int = 100
    #: cap on the measurement phase of one evaluation, seconds — pathological
    #: variants (e.g. unreduced O(N^8) trees) are cut off early rather than
    #: timed for all repetitions, as any practical autotuning rig does
    measure_cap_seconds: float = 1.5


@dataclass(frozen=True)
class CPUCalibration:
    """Behavioural constants of the Haswell baseline models.

    Two code regimes are calibrated separately: *naive* (the sequential
    loop nest Barracuda's TCR produces, compiled as-is — Table II's
    baseline) and *tuned* (the applications' own CPU implementations —
    Table IV's baselines).
    """

    #: flops/cycle of naive scalar loop nests whose data fits the L2
    naive_eff: float = 0.95
    #: multiplicative penalty once arrays spill past the L2 (latency-bound
    #: pointer-chasing through strided small-tensor accesses)
    naive_spill_penalty: float = 0.55
    #: extra penalty when the innermost loop is strided in some input
    naive_strided_penalty: float = 0.85
    #: flops/cycle of the applications' hand-written kernels
    tuned_eff: float = 1.30
    #: flops/cycle of contractions recast as matrix multiplication and
    #: hit with the vendor compiler (the Nekbone CPU path)
    matmul_recast_eff: float = 2.30
    #: OpenMP parallel efficiency on fully parallel outer loops
    omp_efficiency: float = 0.77
    #: extra per-core efficiency of the OpenMP variants (the hand-written
    #: OpenMP codes pick a vectorization-friendly loop order)
    omp_core_boost: float = 1.35
    #: fraction of datasheet DRAM bandwidth one core can draw
    single_core_bw_fraction: float = 0.70


DEFAULT_GPU_CAL = GPUCalibration()
DEFAULT_CPU_CAL = CPUCalibration()
