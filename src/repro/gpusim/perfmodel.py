"""Analytical GPU timing model — the autotuning objective function.

This is the reproduction's substitute for running nvcc-compiled kernels on
real silicon.  For a :class:`~repro.gpusim.kernel.KernelLaunch` it computes
a roofline-style time from exactly the features the paper's search space
manipulates, so the optimization landscape responds to every tuning
parameter for the same physical reasons the hardware does:

========================  ====================================================
decision                  effect in the model
========================  ====================================================
ThreadX choice            per-reference coalescing class -> transaction bytes
ThreadY/BlockX/BlockY     threads/block & grid size -> occupancy, latency
                          hiding, SM utilisation (tail/wave effects)
serial loop order         loop-invariant hoisting (a reference independent of
                          an inner loop is loaded once, not per iteration)
                          and intra-thread locality of the innermost loop
unroll factor             ILP ramp + loop-overhead amortisation, opposed by
                          register pressure -> occupancy loss (non-monotone)
OCTOPI variant            total flops, #kernels (launch overhead), temporary
                          traffic, per-kernel shapes
========================  ====================================================

A deterministic ±3% perturbation keyed on the configuration makes the
landscape realistically rough; optional measurement noise models run-to-run
variation of the empirical autotuner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.gpusim.arch import GPUArch
from repro.gpusim.calibration import DEFAULT_GPU_CAL, GPUCalibration
from repro.gpusim.gemm import combine_busy, gemm_calibration, gemm_features, gemm_times
from repro.gpusim.kernel import AccessClass, KernelLaunch, build_launch_cached
from repro.gpusim.transfer import program_transfer_time
from repro.gpusim.transpose import transpose_calibration, transpose_time
from repro.tcr.program import TCROperation, TCRProgram
from repro.tcr.space import ProgramConfig, TTGTConfig
from repro.tcr.ttgt import resolve_plan_cached
from repro.util.rng import stable_uniform

__all__ = ["KernelTiming", "ProgramTiming", "GPUPerformanceModel"]

_B = 8  # bytes per double


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one kernel's modeled execution."""

    compute_s: float
    memory_s: float
    utilization: float
    occupancy: float
    launch_s: float
    total_s: float
    flops: int

    @property
    def gflops(self) -> float:
        return self.flops / self.total_s / 1e9 if self.total_s > 0 else 0.0

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.memory_s else "memory"


@dataclass(frozen=True)
class ProgramTiming:
    """Breakdown of a whole tuned program run (transfers + all kernels)."""

    h2d_s: float
    d2h_s: float
    kernels: tuple[KernelTiming, ...]
    flops: int

    @property
    def kernel_s(self) -> float:
        return sum(k.total_s for k in self.kernels)

    @property
    def total_s(self) -> float:
        return self.h2d_s + self.kernel_s + self.d2h_s

    @property
    def gflops(self) -> float:
        return self.flops / self.total_s / 1e9 if self.total_s > 0 else 0.0

    @property
    def device_gflops(self) -> float:
        """Rate excluding PCIe transfers (kernel time only)."""
        return self.flops / self.kernel_s / 1e9 if self.kernel_s > 0 else 0.0


class GPUPerformanceModel:
    """Timing model for one architecture.

    Parameters
    ----------
    arch:
        The device datasheet.
    calibration:
        Behavioural constants (defaults reproduce the paper's shapes).
    """

    def __init__(
        self, arch: GPUArch, calibration: GPUCalibration = DEFAULT_GPU_CAL
    ) -> None:
        self.arch = arch
        self.cal = calibration

    # ------------------------------------------------------------------
    # Occupancy & utilization
    # ------------------------------------------------------------------
    def occupancy(self, launch: KernelLaunch) -> tuple[float, int]:
        """(occupancy fraction, concurrent blocks per SM).

        Standard CUDA occupancy arithmetic: blocks per SM limited by the
        block slots, the warp slots, and the register file.
        """
        arch = self.arch
        tpb = launch.threads_per_block
        if tpb > arch.max_threads_per_block:
            raise ConfigurationError(
                f"{tpb} threads/block exceeds {arch.name}'s limit of "
                f"{arch.max_threads_per_block}"
            )
        wpb = math.ceil(tpb / arch.warp_size)
        regs = min(launch.registers_per_thread(), arch.max_registers_per_thread)
        reg_limit = arch.registers_per_sm // max(1, regs * tpb)
        blocks_per_sm = min(
            arch.max_blocks_per_sm, arch.max_warps_per_sm // wpb, reg_limit
        )
        if blocks_per_sm < 1:
            raise ConfigurationError(
                f"register pressure ({regs}/thread x {tpb} threads) leaves no "
                f"room for a block on {arch.name}"
            )
        active_warps = min(blocks_per_sm * wpb, arch.max_warps_per_sm)
        return active_warps / arch.max_warps_per_sm, blocks_per_sm

    def _utilization(self, launch: KernelLaunch, blocks_per_sm: int) -> float:
        """Fraction of the device's latency-hiding capacity actually used."""
        arch = self.arch
        cal = self.cal
        wpb = math.ceil(launch.threads_per_block / arch.warp_size)
        concurrent_blocks = min(launch.total_blocks, arch.sm_count * blocks_per_sm)
        active_warps_total = concurrent_blocks * wpb
        needed = arch.sm_count * arch.latency_hiding_warps
        latency_factor = min(1.0, active_warps_total / needed) ** cal.latency_exponent
        # Wave quantization: a grid of capacity+1 blocks runs as slow as two
        # full waves.  Grids smaller than one wave are *not* penalized here —
        # their idle SMs are what the latency factor already accounts for.
        capacity = arch.sm_count * blocks_per_sm
        waves = math.ceil(launch.total_blocks / capacity)
        tail_factor = (
            1.0 if waves <= 1 else launch.total_blocks / (waves * capacity)
        )
        return latency_factor * max(tail_factor, 1e-3)

    # ------------------------------------------------------------------
    # Compute and memory components
    # ------------------------------------------------------------------
    def _compute_time(self, launch: KernelLaunch) -> float:
        arch = self.arch
        cal = self.cal
        tpb = launch.threads_per_block
        wpb = math.ceil(tpb / arch.warp_size)
        warp_fill = tpb / (wpb * arch.warp_size)
        u = launch.unroll
        ilp = cal.ilp_base + (1.0 - cal.ilp_base) * min(u, cal.ilp_saturation) / cal.ilp_saturation
        overhead = 1.0 / (1.0 + cal.loop_overhead / u)
        eff = cal.compute_efficiency_max * warp_fill * ilp * overhead
        dp_time = launch.flops / (arch.peak_dp_gflops * 1e9 * eff)
        # Small-tensor kernels spend a large share of their issue slots on
        # index arithmetic; unrolling lets the compiler CSE the addressing.
        iterations = launch.total_threads * launch.serial_iterations
        addr_ops_per_iter = cal.addr_base + cal.addr_loop / u
        int_time = iterations * addr_ops_per_iter / (arch.int_gops * 1e9 * warp_fill)
        return dp_time + int_time

    def _memory_time(self, launch: KernelLaunch, scalar_replacement: bool = True) -> float:
        arch = self.arch
        cal = self.cal
        wpb = math.ceil(launch.threads_per_block / arch.warp_size)
        warps_total = launch.total_blocks * wpb
        serial = dict(launch.serial_loops)
        grid_indices = {launch.config.bx, launch.config.by}
        usable_l2 = arch.l2_bytes * cal.l2_usable_fraction
        dram_bytes = 0.0
        l2_bytes = 0.0
        # First pass: per-ref traffic; second pass: split DRAM/L2 using the
        # *hot set* — only re-used arrays compete for L2 residency (streamed
        # arrays such as a huge write-once output do not evict the operands).
        per_ref: list[tuple[float, float]] = []  # (total, cold)
        for acc in launch.accesses:
            # Loop-invariant hoisting: a reference is re-accessed only across
            # the serial loops whose index it actually uses.
            reaccess = 1
            for idx, extent in serial.items():
                if idx in acc.ref.indices:
                    reaccess *= extent
            if acc.access_class is AccessClass.COALESCED:
                per_warp = arch.warp_size * _B
            elif acc.access_class is AccessClass.BROADCAST:
                per_warp = arch.transaction_bytes
            else:  # STRIDED: one transaction per lane
                per_warp = arch.warp_size * arch.transaction_bytes
                if acc.inner_local:
                    # Consecutive serial iterations walk within a line, so the
                    # fetched transaction is partially reused from L1/registers.
                    per_warp /= max(1.0, arch.transaction_bytes / (4 * _B))
            if acc.is_output and not scalar_replacement:
                # Without scalar replacement the accumulator lives in global
                # memory: every reduction iteration reloads and rewrites it.
                red = set(launch.operation.reduction_indices)
                for idx, extent in serial.items():
                    if idx in red and idx not in acc.ref.indices:
                        reaccess *= extent
            raw = warps_total * reaccess * per_warp
            # Intra-block reuse: the elements a block touches (everything not
            # split across the grid) sit in the first-level/read-only cache,
            # so only a calibrated fraction of re-accesses leaves the SM.
            footprint = _B
            for idx in acc.ref.indices:
                if idx not in grid_indices:
                    footprint *= launch.dims[idx]
            block_floor = launch.total_blocks * footprint
            if acc.is_output:
                raw *= 2.0         # read-modify-write at the edges (or per trip)
                block_floor *= 2.0
            if block_floor < raw and footprint <= 64 * 1024:
                total = block_floor + arch.cache_miss_fraction * (raw - block_floor)
            else:
                total = raw
            cold = acc.elements * _B * (2.0 if acc.is_output and cal.write_allocate else 1.0)
            cold = min(cold, total)
            per_ref.append((total, cold))
        hot_set = sum(
            acc.elements * _B
            for acc, (total, cold) in zip(launch.accesses, per_ref)
            if total > 1.5 * cold  # genuinely re-used
        )
        l2_hit = min(1.0, usable_l2 / hot_set) if hot_set > 0 else 1.0
        for total, cold in per_ref:
            dram_now = cold + (total - cold) * (1.0 - l2_hit)
            dram_bytes += dram_now
            l2_bytes += total - dram_now
        eff_bw = arch.dram_bandwidth_gbs * arch.dram_efficiency * 1e9
        return dram_bytes / eff_bw + l2_bytes / (eff_bw * arch.l2_bandwidth_ratio)

    # ------------------------------------------------------------------
    # Public timing API
    # ------------------------------------------------------------------
    def kernel_timing(
        self,
        launch: KernelLaunch,
        scalar_replacement: bool = True,
        efficiency_factor: float = 1.0,
    ) -> KernelTiming:
        """Model one kernel; deterministic for a given (arch, launch).

        ``scalar_replacement=False`` and ``efficiency_factor`` let the
        OpenACC strategy models reuse this machinery with their handicaps.
        """
        occupancy, blocks_per_sm = self.occupancy(launch)
        utilization = self._utilization(launch, blocks_per_sm) * efficiency_factor
        t_c = self._compute_time(launch)
        t_m = self._memory_time(launch, scalar_replacement=scalar_replacement)
        busy = max(t_c, t_m) + 0.3 * min(t_c, t_m)  # imperfect overlap
        launch_s = self.arch.kernel_launch_us * 1e-6
        wobble = 1.0 + self.cal.systematic_noise * (
            2.0 * stable_uniform(
                "kernel", self.arch.name, str(launch.operation),
                launch.config.describe(),
            ) - 1.0
        )
        total = busy / utilization * wobble + launch_s
        return KernelTiming(
            compute_s=t_c,
            memory_s=t_m,
            utilization=utilization,
            occupancy=occupancy,
            launch_s=launch_s,
            total_s=total,
            flops=launch.flops,
        )

    def ttgt_kernel_timing(
        self,
        operation: TCROperation,
        config: TTGTConfig,
        dims,
    ) -> KernelTiming:
        """Model one operation lowered via TTGT (transposes + batched GEMM).

        The GEMM leg uses the per-generation roofline of
        :mod:`repro.gpusim.gemm`; each materialized permutation adds the
        :mod:`repro.gpusim.transpose` sweep cost plus a kernel launch.
        The same ±systematic-noise wobble as the loop-nest path applies,
        keyed under a distinct ``"ttgt"`` prefix so the two lowerings of
        one operation land on independent points of the landscape.

        Bitwise contract: :func:`repro.gpusim.timing_table.build_ttgt_table`
        mirrors this computation with array arguments through the *same*
        gemm/transpose helper functions — keep the two in lockstep.
        """
        plan = resolve_plan_cached(operation, config, dims)
        gcal = gemm_calibration(self.arch)
        tcal = transpose_calibration(self.arch)
        t_c, t_m = gemm_times(self.arch, gcal, *gemm_features(gcal, plan))
        trans_s = 0.0
        for spec in plan.transposes:
            trans_s = trans_s + transpose_time(
                self.arch, tcal, float(spec.elements),
                float(spec.read_inner), float(spec.write_inner),
                1.0 if spec.preserved else 0.0,
            )
        busy = combine_busy(t_c, t_m)
        launch_s = plan.n_kernels * (self.arch.kernel_launch_us * 1e-6)
        wobble = 1.0 + self.cal.systematic_noise * (
            2.0 * stable_uniform(
                "ttgt", self.arch.name, str(operation), config.describe()
            ) - 1.0
        )
        total = (busy + trans_s) * wobble + launch_s
        return KernelTiming(
            compute_s=float(t_c),
            memory_s=float(t_m + trans_s),
            utilization=1.0,
            occupancy=1.0,
            launch_s=launch_s,
            total_s=float(total),
            flops=operation.flops(dims),
        )

    def program_timing(
        self, program: TCRProgram, config: ProgramConfig
    ) -> ProgramTiming:
        """Model a full tuned program: H2D, one kernel per operation, D2H."""
        if len(config.kernels) != len(program.operations):
            raise SimulationError(
                f"configuration has {len(config.kernels)} kernels for "
                f"{len(program.operations)} operations"
            )
        kernels = []
        for op, kc in zip(program.operations, config.kernels):
            if isinstance(kc, TTGTConfig):
                kernels.append(self.ttgt_kernel_timing(op, kc, program.dims))
            else:
                launch = build_launch_cached(op, kc, program.dims)
                kernels.append(self.kernel_timing(launch))
        h2d_elems, d2h_elems = program.transfer_elements()
        h2d, d2h = program_transfer_time(
            self.arch, h2d_elems, d2h_elems, h2d_calls=len(program.input_names)
        )
        return ProgramTiming(
            h2d_s=h2d, d2h_s=d2h, kernels=tuple(kernels), flops=program.flops()
        )

    def noisy_measurement(self, t: float, rng: np.random.Generator) -> float:
        """Apply one draw of measurement noise to a modeled time.

        Shared by the timing and the table-lookup paths so both perturb a
        given time identically (same formula, same rng stream position).
        """
        sigma = self.cal.measurement_noise / math.sqrt(self.cal.repetitions)
        return t * max(0.1, 1.0 + sigma * rng.standard_normal())

    def value_from_timing(
        self,
        timing: ProgramTiming,
        rng: np.random.Generator | None = None,
        include_transfer: bool = True,
    ) -> float:
        """Objective value from an already-computed :class:`ProgramTiming`.

        Evaluator paths that need both the objective and the wall cost can
        compute the timing once and derive both, instead of running the
        model twice per configuration.
        """
        t = timing.total_s if include_transfer else timing.kernel_s
        if rng is not None:
            t = self.noisy_measurement(t, rng)
        return t

    def wall_from_timing(self, timing: ProgramTiming) -> float:
        """Evaluation wall cost from an already-computed timing."""
        measure = min(
            self.cal.repetitions * timing.total_s, self.cal.measure_cap_seconds
        )
        return self.cal.compile_seconds + measure

    def evaluate(
        self,
        program: TCRProgram,
        config: ProgramConfig,
        rng: np.random.Generator | None = None,
        include_transfer: bool = True,
    ) -> float:
        """The autotuning objective: seconds for one empirical evaluation.

        With ``rng`` given, adds measurement noise shrunk by the repetition
        count (the paper averages each point over 100 runs).
        """
        timing = self.program_timing(program, config)
        return self.value_from_timing(timing, rng=rng, include_transfer=include_transfer)

    def evaluation_wall_seconds(
        self, program: TCRProgram, config: ProgramConfig
    ) -> float:
        """Wall-clock cost of *performing* one empirical evaluation.

        Compile + repetitions; this is what the paper's "Search" column in
        Table II accumulates (about 4 s per variant for Lg3t).
        """
        timing = self.program_timing(program, config)
        return self.wall_from_timing(timing)
