"""cuTT-style tensor-transpose cost model.

A TTGT lowering materializes operand/result permutations as standalone
transpose kernels before and after the batched GEMM.  Modern transpose
generators (cuTT — Hynninen & Lyakh, *cutt: A High-Performance Tensor
Transpose Library for CUDA Compatible GPUs*, see PAPERS.md) are
memory-bandwidth bound: each element is read once and written once, and
the achieved fraction of peak DRAM bandwidth depends on whether the
kernel can keep **both** the read and the write side coalesced.

Two kernel families cover the cases this repo's planner produces:

``packed``
    The innermost (fastest-varying) index is preserved by the
    permutation, so contiguous runs of the source are contiguous in the
    destination — reads and writes coalesce directly and the kernel is a
    strided memcpy.  Efficiency is close to the streaming peak.

``tiled``
    The innermost index changes; the kernel stages a shared-memory tile
    (cuTT's "tiled" algorithm) so that global reads follow the source
    layout and global writes follow the destination layout, both
    coalesced through the tile.  The shared-memory round trip and tile
    edge effects cost a constant factor relative to ``packed``.

Either way short innermost extents waste transaction bandwidth: a tile
(or a run) narrower than ``tile_width`` elements leaves lanes idle on one
side of the permutation.  The model scales efficiency linearly with the
narrower of the two innermost extents, floored so tiny tensors degrade
gracefully instead of diverging.

Calibration constants live in a per-generation table — **not** on
:class:`~repro.gpusim.arch.GPUArch` — so arch/calibration fingerprints
(and therefore stored run keys) are untouched by the TTGT backend.

Bitwise-parity note: every formula below uses only ``+ - * /`` and
``np.minimum``/``np.maximum``, all of which produce identical IEEE-754
results elementwise whether the inputs are Python floats or numpy
float64 arrays.  The vectorized timing table calls these *same*
functions with array arguments, so table/scalar parity holds by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.arch import GPUArch

__all__ = [
    "TransposeCal",
    "TRANSPOSE_CAL",
    "transpose_calibration",
    "transpose_time",
]

_BYTES_PER_ELEMENT = 8  # double precision, as everywhere in the model


@dataclass(frozen=True)
class TransposeCal:
    """Per-generation transpose-kernel efficiency constants."""

    #: fraction of effective DRAM bandwidth for innermost-preserving copies
    packed_eff: float
    #: fraction for shared-memory tiled transposes (innermost changes)
    tiled_eff: float
    #: tile width in elements; narrower innermost extents waste lanes
    tile_width: float
    #: efficiency floor for degenerate (very narrow) shapes
    floor_eff: float


#: Keyed by ``GPUArch.generation``.  Fermi's weaker coalescing hardware
#: (128B transactions, no read-only cache) pays more for tiling; Maxwell's
#: larger L2 and 32B transactions keep even tiled transposes near peak.
TRANSPOSE_CAL: dict[str, TransposeCal] = {
    "Fermi": TransposeCal(packed_eff=0.82, tiled_eff=0.52, tile_width=16.0, floor_eff=0.18),
    "Kepler": TransposeCal(packed_eff=0.86, tiled_eff=0.62, tile_width=32.0, floor_eff=0.20),
    "Maxwell": TransposeCal(packed_eff=0.91, tiled_eff=0.74, tile_width=32.0, floor_eff=0.22),
}


def transpose_calibration(arch: GPUArch) -> TransposeCal:
    """The transpose constants for ``arch``'s generation."""
    return TRANSPOSE_CAL[arch.generation]


def transpose_time(
    arch: GPUArch,
    cal: TransposeCal,
    elements,
    read_inner,
    write_inner,
    preserved,
):
    """Seconds to permute ``elements`` doubles on ``arch`` (launch excluded).

    ``read_inner``/``write_inner`` are the innermost extents of the source
    and destination layouts; ``preserved`` is 1.0 when the innermost index
    survives the permutation (packed kernel) and 0.0 otherwise (tiled).
    All four accept Python scalars or numpy arrays interchangeably.
    """
    eff = cal.tiled_eff + (cal.packed_eff - cal.tiled_eff) * preserved
    narrow = np.minimum(read_inner, write_inner) / cal.tile_width
    shape_factor = np.maximum(cal.floor_eff, np.minimum(1.0, narrow))
    bytes_moved = 2.0 * _BYTES_PER_ELEMENT * elements
    bandwidth = arch.dram_bandwidth_gbs * arch.dram_efficiency * 1e9
    return bytes_moved / (bandwidth * eff * shape_factor)
