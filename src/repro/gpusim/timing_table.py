"""Vectorized kernel-timing tables: the performance model, batched.

Every search strategy bottoms out in
:meth:`~repro.gpusim.perfmodel.GPUPerformanceModel.evaluate`, which
rebuilds a :class:`~repro.gpusim.kernel.KernelLaunch` and re-runs the
scalar occupancy/compute/memory arithmetic for each configuration.  But a
program's modeled time is a *sum of independent per-kernel timings* plus
configuration-independent transfer costs, so a product space
``|K1| x |K2| x ... x |Kn|`` contains only ``|K1| + |K2| + ... + |Kn|``
distinct kernel timings.  This module exploits that separability:

``KernelTimingTable``
    All of one kernel's per-configuration timings, computed in a single
    numpy pass over the kernel space.  The arithmetic mirrors
    ``GPUPerformanceModel`` operation for operation (same association
    order, same int-to-float conversion points), so table entries are
    **bitwise equal** to ``kernel_timing(...).total_s`` — a guarantee the
    test suite enforces.  Configurations the scalar model would reject
    with :class:`~repro.errors.ConfigurationError` (register pressure,
    oversized blocks, illegal unroll) are marked invalid and carry
    ``+inf``.
``ProgramTimingTable``
    Per-kernel tables composed with the config-independent H2D/D2H costs:
    O(1) lookup of a whole program configuration, per-kernel ``argmin`` in
    O(sum |Ki|), and a broadcast-summed sweep of the *entire* product
    space.

The deterministic wobble (``stable_uniform`` keyed on the configuration)
is inherently scalar — one BLAKE2b hash per configuration — so it is
precomputed once per table entry during the gather pass instead of being
re-hashed on every model call.

What the tables do *not* model: measurement noise (applied per whole
program, on top of the table value, by the evaluator) and the
``scalar_replacement=False`` / ``efficiency_factor`` handicaps of the
OpenACC strategy models (those paths stay on the scalar model).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.calibration import GPUCalibration
from repro.gpusim.gemm import combine_busy, gemm_calibration, gemm_features, gemm_times
from repro.gpusim.perfmodel import GPUPerformanceModel
from repro.gpusim.transfer import program_transfer_time
from repro.gpusim.transpose import transpose_calibration, transpose_time
from repro.tcr.memory import stride_of
from repro.tcr.program import TCROperation, TCRProgram
from repro.tcr.space import (
    ONE,
    KernelConfig,
    ProgramConfig,
    ProgramSpace,
    TTGTKernelSpace,
)
from repro.tcr.ttgt import resolve_plan_cached
from repro.util.rng import StableHashPrefix

__all__ = ["KernelTimingTable", "ProgramTimingTable"]

_B = 8  # bytes per double (matches perfmodel)

#: Access-class codes for the vectorized memory model.
_COALESCED, _BROADCAST, _STRIDED = 0, 1, 2


@dataclass(frozen=True)
class KernelTimingTable:
    """All per-configuration timings of one kernel, as flat numpy vectors.

    ``totals[i]`` is bitwise equal to
    ``model.kernel_timing(build_launch(operation, configs[i], dims)).total_s``
    when configuration ``i`` is buildable, and ``+inf`` (with
    ``valid[i] == False``) when the scalar path would raise
    :class:`ConfigurationError`.
    """

    operation: TCROperation
    configs: tuple[KernelConfig, ...]
    flops: int
    totals: np.ndarray
    valid: np.ndarray
    compute_s: np.ndarray
    memory_s: np.ndarray
    utilization: np.ndarray
    occupancy: np.ndarray

    def __len__(self) -> int:
        return len(self.configs)

    def __getstate__(self):
        # Drop lazily-cached derived state; rebuilt on demand after unpickling.
        return {
            k: v
            for k, v in self.__dict__.items()
            if k not in ("totals_list", "valid_list")
        }

    @cached_property
    def totals_list(self) -> list[float]:
        """``totals`` as Python floats — faster for one-at-a-time lookups.

        ``ndarray.tolist()`` is exact for float64, so scalar sums over
        these stay bitwise equal to the scalar model.
        """
        return self.totals.tolist()

    @cached_property
    def valid_list(self) -> list[bool]:
        return self.valid.tolist()

    @classmethod
    def build(
        cls,
        model: GPUPerformanceModel,
        operation: TCROperation,
        configs: Sequence[KernelConfig],
        dims: Mapping[str, int],
    ) -> "KernelTimingTable":
        """Compute every configuration's timing in one vectorized pass."""
        arch, cal = model.arch, model.cal
        configs = tuple(configs)
        n = len(configs)
        refs = [(r, False) for r in operation.inputs] + [(operation.output, True)]
        n_refs = len(refs)
        parallel = set(operation.parallel_indices)
        all_idx = set(operation.all_indices)
        red = set(operation.reduction_indices)
        serial_pool = operation.output.indices + operation.reduction_indices
        wobble_key = StableHashPrefix("kernel", arch.name, str(operation))
        flops = operation.flops(dims)

        def ext(idx: str) -> int:
            return 1 if idx == ONE else dims[idx]

        # ------------------------------------------------------------------
        # Gather pass: per-configuration integers.  Everything that does not
        # depend on the unroll factor is shared by a "family" of
        # configurations (same decomposition + serial order), so it is
        # computed once per family and reused — the per-configuration work
        # is a dict lookup, the unroll legality check, and the wobble hash.
        # ------------------------------------------------------------------
        family_cache: dict[tuple, tuple] = {}

        def family(cfg: KernelConfig) -> tuple:
            key = (cfg.tx, cfg.ty, cfg.bx, cfg.by, cfg.serial_order)
            fam = family_cache.get(key)
            if fam is None:
                ok = cfg.tx != ONE
                mapped = cfg.mapped
                mapped_set = set(mapped)
                if ok:
                    if len(mapped_set) != len(mapped):
                        ok = False
                    elif any(i not in all_idx or i not in parallel for i in mapped):
                        ok = False
                    else:
                        expected = [i for i in serial_pool if i not in mapped_set]
                        if sorted(cfg.serial_order) != sorted(expected):
                            ok = False
                inner_red = 1
                for idx in reversed(cfg.serial_order):
                    if idx in red:
                        inner_red = dims[idx]
                        break
                tpb = ext(cfg.tx) * ext(cfg.ty)
                blocks = ext(cfg.bx) * ext(cfg.by)
                sit = 1
                for idx in cfg.serial_order:
                    sit *= dims[idx]
                grid = {cfg.bx, cfg.by}
                inner = cfg.serial_order[-1] if cfg.serial_order else None
                per_ref = []
                for ref, _is_out in refs:
                    txs = stride_of(ref, cfg.tx, dims)
                    ins = stride_of(ref, inner, dims) if inner is not None else 0
                    code = (
                        _COALESCED if txs == 1
                        else _BROADCAST if txs == 0
                        else _STRIDED
                    )
                    reacc = 1
                    for idx in dict.fromkeys(cfg.serial_order):
                        if idx in ref.indices:
                            reacc *= dims[idx]
                    fp = _B
                    for idx in ref.indices:
                        if idx not in grid:
                            fp *= dims[idx]
                    per_ref.append((code, 0 <= ins <= 4, reacc, fp))
                fam = (ok, inner_red, tpb, blocks, sit, len(cfg.serial_order), per_ref)
                family_cache[key] = fam
            return fam

        ok_l = np.empty(n, dtype=bool)
        tpb_l = np.empty(n, dtype=np.int64)
        blocks_l = np.empty(n, dtype=np.int64)
        sit_l = np.empty(n, dtype=np.int64)
        nser_l = np.empty(n, dtype=np.int64)
        unroll_l = np.empty(n, dtype=np.int64)
        wob_l = np.empty(n, dtype=np.float64)
        code_l = np.empty((n_refs, n), dtype=np.int64)
        local_l = np.empty((n_refs, n), dtype=bool)
        reacc_l = np.empty((n_refs, n), dtype=np.int64)
        fp_l = np.empty((n_refs, n), dtype=np.int64)

        for i, cfg in enumerate(configs):
            ok, inner_red, tpb, blocks, sit, nser, per_ref = family(cfg)
            u = cfg.unroll
            if u < 1 or (inner_red == 1 and u != 1) or u > inner_red:
                ok = False
            ok_l[i] = ok
            tpb_l[i] = tpb
            blocks_l[i] = blocks
            sit_l[i] = sit
            nser_l[i] = nser
            unroll_l[i] = u
            wob_l[i] = wobble_key.uniform(cfg.describe())
            for r, (code, inner_local, reacc, fp) in enumerate(per_ref):
                code_l[r, i] = code
                local_l[r, i] = inner_local
                reacc_l[r, i] = reacc
                fp_l[r, i] = fp

        # ------------------------------------------------------------------
        # Occupancy (perfmodel.occupancy): block slots, warp slots, registers.
        # ------------------------------------------------------------------
        ws = arch.warp_size
        wpb = -(-tpb_l // ws)  # ceil(tpb / warp_size), exact for integer tpb
        regs = np.minimum(
            14 + 3 * np.maximum(0, unroll_l - 1) + 2 * nser_l,
            arch.max_registers_per_thread,
        )
        reg_limit = arch.registers_per_sm // np.maximum(1, regs * tpb_l)
        bps = np.minimum(
            np.minimum(arch.max_blocks_per_sm, arch.max_warps_per_sm // wpb),
            reg_limit,
        )
        valid = ok_l & (tpb_l <= arch.max_threads_per_block) & (bps >= 1)
        bps = np.maximum(bps, 1)  # keep the arithmetic finite on invalid rows
        active_warps = np.minimum(bps * wpb, arch.max_warps_per_sm)
        occupancy = active_warps / arch.max_warps_per_sm

        # ------------------------------------------------------------------
        # Utilization (perfmodel._utilization).
        # ------------------------------------------------------------------
        concurrent = np.minimum(blocks_l, arch.sm_count * bps)
        needed = arch.sm_count * arch.latency_hiding_warps
        # numpy's vectorized pow can differ from libm's by 1 ulp; the scalar
        # model uses Python's ``**`` (libm), so match it elementwise.
        latency_base = np.minimum(1.0, concurrent * wpb / needed)
        exp = cal.latency_exponent
        latency = np.fromiter(
            (b ** exp for b in latency_base.tolist()), dtype=np.float64, count=n
        )
        capacity = arch.sm_count * bps
        waves = np.ceil(blocks_l / capacity)
        tail = np.where(waves <= 1.0, 1.0, blocks_l / (waves * capacity))
        utilization = latency * np.maximum(tail, 1e-3)

        # ------------------------------------------------------------------
        # Compute time (perfmodel._compute_time).
        # ------------------------------------------------------------------
        warp_fill = tpb_l / (wpb * ws)
        ilp = (
            cal.ilp_base
            + (1.0 - cal.ilp_base)
            * np.minimum(unroll_l, cal.ilp_saturation)
            / cal.ilp_saturation
        )
        overhead = 1.0 / (1.0 + cal.loop_overhead / unroll_l)
        eff = cal.compute_efficiency_max * warp_fill * ilp * overhead
        dp_time = flops / (arch.peak_dp_gflops * 1e9 * eff)
        iterations = tpb_l * blocks_l * sit_l
        addr_ops = cal.addr_base + cal.addr_loop / unroll_l
        int_time = iterations * addr_ops / (arch.int_gops * 1e9 * warp_fill)
        compute_s = dp_time + int_time

        # ------------------------------------------------------------------
        # Memory time (perfmodel._memory_time, scalar_replacement=True).
        # ------------------------------------------------------------------
        warps_total = blocks_l * wpb
        strided_pw = float(ws * arch.transaction_bytes)
        strided_pw_local = strided_pw / max(1.0, arch.transaction_bytes / (4 * _B))
        per_ref_traffic: list[tuple[np.ndarray, np.ndarray]] = []
        hot_set = np.zeros(n, dtype=np.int64)
        for r, (ref, is_out) in enumerate(refs):
            per_warp = np.where(
                code_l[r] == _COALESCED,
                float(ws * _B),
                np.where(
                    code_l[r] == _BROADCAST,
                    float(arch.transaction_bytes),
                    np.where(local_l[r], strided_pw_local, strided_pw),
                ),
            )
            raw = warps_total * reacc_l[r] * per_warp
            block_floor = (blocks_l * fp_l[r]).astype(np.float64)
            if is_out:
                raw = raw * 2.0
                block_floor = block_floor * 2.0
            cond = (block_floor < raw) & (fp_l[r] <= 64 * 1024)
            total = np.where(
                cond,
                block_floor + arch.cache_miss_fraction * (raw - block_floor),
                raw,
            )
            elements = ref.size(dims)
            cold_const = elements * _B * (
                2.0 if is_out and cal.write_allocate else 1.0
            )
            cold = np.minimum(cold_const, total)
            hot_set = hot_set + np.where(total > 1.5 * cold, elements * _B, 0)
            per_ref_traffic.append((total, cold))
        usable_l2 = arch.l2_bytes * cal.l2_usable_fraction
        l2_hit = np.where(
            hot_set > 0,
            np.minimum(1.0, usable_l2 / np.maximum(hot_set, 1)),
            1.0,
        )
        dram_bytes = 0.0
        l2_bytes = 0.0
        for total, cold in per_ref_traffic:
            dram_now = cold + (total - cold) * (1.0 - l2_hit)
            dram_bytes = dram_bytes + dram_now
            l2_bytes = l2_bytes + (total - dram_now)
        eff_bw = arch.dram_bandwidth_gbs * arch.dram_efficiency * 1e9
        memory_s = dram_bytes / eff_bw + l2_bytes / (eff_bw * arch.l2_bandwidth_ratio)

        # ------------------------------------------------------------------
        # Whole-kernel assembly (perfmodel.kernel_timing).
        # ------------------------------------------------------------------
        busy = np.maximum(compute_s, memory_s) + 0.3 * np.minimum(compute_s, memory_s)
        launch_s = arch.kernel_launch_us * 1e-6
        wobble = 1.0 + cal.systematic_noise * (2.0 * wob_l - 1.0)
        totals = busy / utilization * wobble + launch_s
        totals = np.where(valid, totals, np.inf)

        return cls(
            operation=operation,
            configs=configs,
            flops=flops,
            totals=totals,
            valid=valid,
            compute_s=compute_s,
            memory_s=memory_s,
            utilization=utilization,
            occupancy=occupancy,
        )

    @classmethod
    def build_ttgt(
        cls,
        model: GPUPerformanceModel,
        operation: TCROperation,
        configs: Sequence,
        dims: Mapping[str, int],
    ) -> "KernelTimingTable":
        """Vectorized TTGT scoring: one table row per TTGT configuration.

        Mirrors ``GPUPerformanceModel.ttgt_kernel_timing`` bitwise.  The
        gather pass resolves each configuration's plan to integers via the
        *same* :func:`~repro.gpusim.gemm.gemm_features` helper the scalar
        path uses; the float math then runs through the *same*
        ``gemm_times``/``transpose_time``/``combine_busy`` functions with
        array arguments (all their operations are elementwise IEEE-754,
        so scalar and array results agree bit for bit).  Transposes
        occupy fixed (A, B, C) slots; absent slots contribute an exact
        ``+ 0.0``, which preserves the scalar sum bitwise.  TTGT legality
        is enforced at enumeration time, so every row is valid.
        """
        arch, cal = model.arch, model.cal
        configs = tuple(configs)
        n = len(configs)
        gcal = gemm_calibration(arch)
        tcal = transpose_calibration(arch)
        wobble_key = StableHashPrefix("ttgt", arch.name, str(operation))
        flops = operation.flops(dims)

        feat = np.empty((8, n), dtype=np.float64)
        n_kernels = np.empty(n, dtype=np.float64)
        wob = np.empty(n, dtype=np.float64)
        slot_elements = np.zeros((3, n), dtype=np.float64)
        slot_read = np.ones((3, n), dtype=np.float64)
        slot_write = np.ones((3, n), dtype=np.float64)
        slot_preserved = np.zeros((3, n), dtype=np.float64)
        slot_mask = np.zeros((3, n), dtype=bool)
        slot_of = {"A": 0, "B": 1, "C": 2}
        for i, cfg in enumerate(configs):
            plan = resolve_plan_cached(operation, cfg, dims)
            for j, value in enumerate(gemm_features(gcal, plan)):
                feat[j, i] = value
            n_kernels[i] = plan.n_kernels
            wob[i] = wobble_key.uniform(cfg.describe())
            for spec in plan.transposes:
                s = slot_of[spec.slot]
                slot_mask[s, i] = True
                slot_elements[s, i] = spec.elements
                slot_read[s, i] = spec.read_inner
                slot_write[s, i] = spec.write_inner
                slot_preserved[s, i] = 1.0 if spec.preserved else 0.0

        compute_s, gemm_memory_s = gemm_times(
            arch, gcal,
            feat[0], feat[1], feat[2], feat[3], feat[4], feat[5], feat[6],
            feat[7],
        )
        trans_s = np.zeros(n, dtype=np.float64)
        for s in range(3):
            t = transpose_time(
                arch, tcal, slot_elements[s], slot_read[s], slot_write[s],
                slot_preserved[s],
            )
            trans_s = trans_s + np.where(slot_mask[s], t, 0.0)
        busy = combine_busy(compute_s, gemm_memory_s)
        launch_s = n_kernels * (arch.kernel_launch_us * 1e-6)
        wobble = 1.0 + cal.systematic_noise * (2.0 * wob - 1.0)
        totals = (busy + trans_s) * wobble + launch_s

        return cls(
            operation=operation,
            configs=configs,
            flops=flops,
            totals=totals,
            valid=np.ones(n, dtype=bool),
            compute_s=compute_s,
            memory_s=gemm_memory_s + trans_s,
            utilization=np.ones(n, dtype=np.float64),
            occupancy=np.ones(n, dtype=np.float64),
        )


@dataclass(frozen=True)
class ProgramTimingTable:
    """Per-kernel timing tables composed with the transfer costs.

    Kernel indices address the owning :class:`ProgramSpace`'s kernel
    spaces; ``lookup`` maps a :class:`ProgramConfig` onto them.  All times
    reproduce ``GPUPerformanceModel.program_timing`` bitwise (same
    left-to-right summation order as ``ProgramTiming``).
    """

    program: TCRProgram
    space: ProgramSpace
    kernels: tuple[KernelTimingTable, ...]
    cal: GPUCalibration
    h2d_s: float
    d2h_s: float
    flops: int

    @classmethod
    def build(
        cls,
        model: GPUPerformanceModel,
        program: TCRProgram,
        space: ProgramSpace,
    ) -> "ProgramTimingTable":
        kernels = tuple(
            KernelTimingTable.build_ttgt(model, op, ks, program.dims)
            if isinstance(ks, TTGTKernelSpace)
            else KernelTimingTable.build(model, op, ks, program.dims)
            for op, ks in zip(program.operations, space.kernel_spaces)
        )
        h2d_elems, d2h_elems = program.transfer_elements()
        h2d, d2h = program_transfer_time(
            model.arch, h2d_elems, d2h_elems, h2d_calls=len(program.input_names)
        )
        return cls(
            program=program,
            space=space,
            kernels=kernels,
            cal=model.cal,
            h2d_s=h2d,
            d2h_s=d2h,
            flops=program.flops(),
        )

    # ------------------------------------------------------------------
    @property
    def variant_index(self) -> int:
        return self.space.variant_index

    def size(self) -> int:
        """Size of the full product space this table can sweep."""
        return self.space.size()

    @property
    def kernel_evaluations(self) -> int:
        """Distinct kernel timings held — sum, not product, of space sizes."""
        return sum(len(t) for t in self.kernels)

    def __getstate__(self):
        # The identity maps key on object addresses of THIS process — they
        # must never cross a pickle boundary (a worker's objects live at
        # different addresses, so stale keys could silently mis-resolve).
        return {
            k: v for k, v in self.__dict__.items() if k != "_identity_maps"
        }

    # ------------------------------------------------------------------
    @cached_property
    def _identity_maps(self) -> tuple[dict[int, int], ...]:
        """Per-kernel ``id(config) -> index`` maps for the space's objects.

        Configurations decoded from the space (``config_at``,
        ``enumerate_all``) reference the kernel spaces' own materialized
        objects, so an identity probe resolves them without hashing the
        config; equal-but-distinct objects fall back to ``index_of``.
        Sound because the space keeps every keyed object alive — a live
        foreign object can never share its id.
        """
        return tuple(
            {id(c): i for i, c in enumerate(ks)}
            for ks in self.space.kernel_spaces
        )

    def lookup(self, config: ProgramConfig) -> tuple[int, ...]:
        """Per-kernel table indices of ``config`` (raises if not in space)."""
        if len(config.kernels) != len(self.kernels):
            raise ConfigurationError(
                f"configuration has {len(config.kernels)} kernels for a "
                f"{len(self.kernels)}-kernel table"
            )
        ids = []
        for imap, ks, kc in zip(
            self._identity_maps, self.space.kernel_spaces, config.kernels
        ):
            i = imap.get(id(kc))
            ids.append(ks.index_of(kc) if i is None else i)
        return tuple(ids)

    def valid_at(self, ids: Sequence[int]) -> bool:
        for t, i in zip(self.kernels, ids):
            if not t.valid_list[i]:
                return False
        return True

    def kernel_seconds(self, ids: Sequence[int]) -> float:
        """Sum of kernel times (``ProgramTiming.kernel_s``); inf if invalid."""
        total = 0.0
        for t, i in zip(self.kernels, ids):
            total = total + t.totals_list[i]
        return total

    def total_seconds(self, ids: Sequence[int], include_transfer: bool = True) -> float:
        ks = self.kernel_seconds(ids)
        if not include_transfer:
            return ks
        return (self.h2d_s + ks) + self.d2h_s

    def evaluation_wall(self, ids: Sequence[int]) -> float:
        """Simulated rig cost of one empirical evaluation of this point."""
        total = self.total_seconds(ids, include_transfer=True)
        measure = min(self.cal.repetitions * total, self.cal.measure_cap_seconds)
        return self.cal.compile_seconds + measure

    def config_for(self, ids: Sequence[int], global_id: int = -1) -> ProgramConfig:
        return ProgramConfig(
            variant_index=self.space.variant_index,
            kernels=tuple(
                ks[i] for ks, i in zip(self.space.kernel_spaces, ids)
            ),
            global_id=global_id,
        )

    def local_index(self, ids: Sequence[int]) -> int:
        """Mixed-radix position of ``ids`` within the program space."""
        index = 0
        for ks, i in zip(self.space.kernel_spaces, ids):
            index = index * len(ks) + i
        return index

    # ------------------------------------------------------------------
    def full_totals(self, include_transfer: bool = True) -> np.ndarray:
        """Broadcast-summed totals of the *entire* product space.

        Entry ``g`` equals ``total_seconds`` of the configuration
        ``space.config_at(g)`` (mixed-radix order, last kernel fastest);
        configurations containing an invalid kernel config are ``+inf``.
        Allocates O(product) floats — guard with :meth:`size` first.
        """
        acc = self.kernels[0].totals
        for t in self.kernels[1:]:
            acc = acc[..., None] + t.totals
        out = acc.reshape(-1)
        if include_transfer:
            out = (self.h2d_s + out) + self.d2h_s
        return out

    def argmin(
        self, include_transfer: bool = True
    ) -> tuple[tuple[int, ...], float] | None:
        """Noise-free optimum via per-kernel argmin — O(sum |Ki|).

        Separability: the program total is a sum of independent per-kernel
        terms plus constants, so its minimizer is the per-kernel minimizer
        tuple.  First-occurrence ``argmin`` per kernel reproduces the
        global enumeration-order tie-break.  Returns None when some kernel
        has no valid configuration at all.
        """
        ids = []
        for t in self.kernels:
            if not bool(t.valid.any()):
                return None
            ids.append(int(np.argmin(t.totals)))
        ids_t = tuple(ids)
        return ids_t, self.total_seconds(ids_t, include_transfer)

    def first_invalid(self) -> tuple[int, ...] | None:
        """Kernel ids of the enumeration-earliest *invalid* configuration.

        That is the first point an exhaustive enumeration would score as a
        build-failure penalty; None when every configuration is valid.
        """
        sizes = [len(t) for t in self.kernels]
        best_pos: int | None = None
        best_ids: tuple[int, ...] | None = None
        for k, t in enumerate(self.kernels):
            invalid = np.flatnonzero(~t.valid)
            if invalid.size == 0:
                continue
            ids = tuple(
                int(invalid[0]) if j == k else 0 for j in range(len(sizes))
            )
            pos = self.local_index(ids)
            if best_pos is None or pos < best_pos:
                best_pos, best_ids = pos, ids
        return best_ids
