"""Architecture descriptions for the paper's four evaluation machines.

Numbers are the public specifications of each device (SM counts, clocks,
bandwidths, occupancy limits); behavioural fudge factors live in
:mod:`repro.gpusim.calibration`, not here, so this module stays a plain
datasheet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError

__all__ = [
    "GPUArch",
    "CPUArch",
    "C2050",
    "K20",
    "GTX980",
    "HASWELL",
    "ALL_GPUS",
    "gpu_by_name",
]


@dataclass(frozen=True)
class GPUArch:
    """Datasheet of one CUDA device generation."""

    name: str
    generation: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    #: double-precision multiply-add results per core per cycle
    #: (Fermi 1/2, Kepler GK110 1/3 via DP units, Maxwell 1/32).
    dp_per_core_per_cycle: float
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    max_registers_per_thread: int
    l2_bytes: int
    dram_bandwidth_gbs: float
    #: sustained PCIe bandwidth (H2D/D2H) and per-call latency
    pcie_bandwidth_gbs: float
    pcie_latency_us: float
    kernel_launch_us: float
    #: warps per SM needed to hide pipeline+memory latency on this generation
    latency_hiding_warps: int
    #: memory transaction granularity in bytes (128 on Fermi L1 path,
    #: 32 on Kepler/Maxwell for scattered access)
    transaction_bytes: int
    #: aggregate L2 bandwidth relative to DRAM bandwidth
    l2_bandwidth_ratio: float
    #: effective integer/address-arithmetic throughput (Gops/s) — small
    #: tensor kernels spend much of their issue slots on index arithmetic
    int_gops: float
    #: achieved fraction of datasheet DRAM bandwidth (ECC, access patterns)
    dram_efficiency: float
    #: fraction of intra-block re-accesses that miss the first-level /
    #: read-only cache and fall through to L2/DRAM
    cache_miss_fraction: float

    @property
    def peak_dp_gflops(self) -> float:
        """Peak double-precision GFlop/s (2 flops per fused multiply-add)."""
        return (
            2.0
            * self.sm_count
            * self.cores_per_sm
            * self.dp_per_core_per_cycle
            * self.clock_ghz
        )

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def __str__(self) -> str:
        return f"{self.name} ({self.generation})"


@dataclass(frozen=True)
class CPUArch:
    """Datasheet of the host CPU used for the sequential/OpenMP baselines."""

    name: str
    cores: int
    clock_ghz: float
    #: double-precision flops per cycle per core for scalar code
    scalar_flops_per_cycle: float
    #: and for compiler-vectorized (AVX2+FMA) inner loops
    vector_flops_per_cycle: float
    l1_bytes: int
    l2_bytes: int
    l3_bytes: int
    dram_bandwidth_gbs: float

    @property
    def peak_scalar_gflops(self) -> float:
        return self.clock_ghz * self.scalar_flops_per_cycle

    def __str__(self) -> str:
        return self.name


C2050 = GPUArch(
    name="Tesla C2050",
    generation="Fermi",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    dp_per_core_per_cycle=0.5,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    l2_bytes=768 * 1024,
    dram_bandwidth_gbs=144.0,
    pcie_bandwidth_gbs=5.2,
    pcie_latency_us=11.0,
    kernel_launch_us=8.0,
    latency_hiding_warps=18,
    transaction_bytes=128,
    l2_bandwidth_ratio=1.4,
    int_gops=380.0,
    dram_efficiency=0.70,
    cache_miss_fraction=0.35,
)

K20 = GPUArch(
    name="Tesla K20",
    generation="Kepler",
    sm_count=13,
    cores_per_sm=192,
    clock_ghz=0.706,
    dp_per_core_per_cycle=1.0 / 3.0,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    l2_bytes=1280 * 1024,
    dram_bandwidth_gbs=208.0,
    pcie_bandwidth_gbs=5.6,
    pcie_latency_us=10.0,
    kernel_launch_us=6.0,
    latency_hiding_warps=24,
    transaction_bytes=32,
    l2_bandwidth_ratio=1.5,
    int_gops=420.0,
    dram_efficiency=0.45,
    cache_miss_fraction=0.70,
)

GTX980 = GPUArch(
    name="GTX 980",
    generation="Maxwell",
    sm_count=16,
    cores_per_sm=128,
    clock_ghz=1.126,
    dp_per_core_per_cycle=1.0 / 32.0,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    l2_bytes=2 * 1024 * 1024,
    dram_bandwidth_gbs=224.0,
    pcie_bandwidth_gbs=11.5,
    pcie_latency_us=7.0,
    kernel_launch_us=4.0,
    latency_hiding_warps=16,
    transaction_bytes=32,
    l2_bandwidth_ratio=3.0,
    int_gops=900.0,
    dram_efficiency=0.80,
    cache_miss_fraction=0.55,
)

HASWELL = CPUArch(
    name="Intel Haswell (4-core)",
    cores=4,
    clock_ghz=3.4,
    scalar_flops_per_cycle=2.0,
    vector_flops_per_cycle=16.0,
    l1_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    l3_bytes=8 * 1024 * 1024,
    dram_bandwidth_gbs=25.6,
)

ALL_GPUS: tuple[GPUArch, ...] = (GTX980, K20, C2050)

_GPU_ALIASES = {
    "gtx980": GTX980,
    "gtx 980": GTX980,
    "maxwell": GTX980,
    "k20": K20,
    "tesla k20": K20,
    "kepler": K20,
    "c2050": C2050,
    "tesla c2050": C2050,
    "fermi": C2050,
}


def gpu_by_name(name: str) -> GPUArch:
    """Look up a GPU by name, codename or generation (case-insensitive)."""
    key = name.strip().lower()
    if key in _GPU_ALIASES:
        return _GPU_ALIASES[key]
    raise ArchitectureError(
        f"unknown GPU {name!r}; known: {sorted(set(_GPU_ALIASES))}"
    )
