"""Batched/strided double-precision GEMM roofline model.

The GEMM leg of a TTGT lowering is modeled in the spirit of the existing
:mod:`repro.gpusim.perfmodel`: an analytical compute term and an
analytical memory term, combined with partial overlap, calibrated per GPU
generation.  The structure follows Peise & Bientinesi's BLAS
performance-prediction work (PAPERS.md) — predict from the kernel's
blocking parameters and the operand shapes, not from measurement — with
the batched/strided extensions of Shi et al. (*Tensor Contractions with
Extended BLAS Kernels*, PAPERS.md): a batch dimension multiplies the
flop and traffic volumes, and an operand missing the batch index is
broadcast (its traffic is charged once, not per batch member).

Compute term
    ``2·batch·M·N·K`` flops against the device's double-precision peak,
    derated by (a) a large-size efficiency ceiling ``peak_eff``, (b) the
    output-tile quantization loss ``(M/⌈M/Tm⌉Tm)·(N/⌈N/Tn⌉Tn)`` — partial
    edge tiles run at full cost for partial work — and (c) a K-ramp
    ``K/(K + k_half)`` modeling pipeline fill and the tail of the inner
    product loop.

Memory term
    Tiled GEMM reads each A element once per N-tile column and each B
    element once per M-tile row; C is read and written once.  A
    transposed-layout operand costs a read-penalty factor (worse
    coalescing in the non-native direction).

Calibration constants live in a per-generation table — **not** on
:class:`~repro.gpusim.arch.GPUArch` or
:class:`~repro.gpusim.calibration.GPUCalibration` — so existing
arch/calibration fingerprints (and stored run keys) are unchanged.

Bitwise-parity note: :func:`gemm_features` does the integer shape math
(ceil-division tile counts, flop/traffic volumes) and is shared verbatim
by the scalar model and the vectorized table's gather pass;
:func:`gemm_times` and :func:`combine_busy` use only ``+ - * /`` and
``np.minimum``/``np.maximum``, so calling them with numpy arrays yields
bitwise the same values per element as the scalar calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.arch import GPUArch

__all__ = [
    "GemmCal",
    "GEMM_CAL",
    "gemm_calibration",
    "gemm_features",
    "gemm_times",
    "combine_busy",
]

_BYTES_PER_ELEMENT = 8


@dataclass(frozen=True)
class GemmCal:
    """Per-generation DGEMM kernel constants."""

    #: asymptotic fraction of peak DP flops at large, tile-aligned sizes
    peak_eff: float
    #: output tile height (rows of C per thread block)
    tile_m: int
    #: output tile width
    tile_n: int
    #: K extent at which the inner-product ramp reaches 50% efficiency
    k_half: float
    #: extra read-traffic fraction per transposed-layout operand
    trans_read_penalty: float


#: Keyed by ``GPUArch.generation``.  Fermi DGEMM (MAGMA-era) plateaus
#: around 60% of peak; Kepler's wider SMX reaches ~75% with larger tiles;
#: Maxwell's scarce DP units saturate easily (high fraction of a low peak).
GEMM_CAL: dict[str, GemmCal] = {
    "Fermi": GemmCal(peak_eff=0.60, tile_m=32, tile_n=32, k_half=12.0, trans_read_penalty=0.25),
    "Kepler": GemmCal(peak_eff=0.76, tile_m=64, tile_n=64, k_half=10.0, trans_read_penalty=0.15),
    "Maxwell": GemmCal(peak_eff=0.88, tile_m=32, tile_n=32, k_half=6.0, trans_read_penalty=0.12),
}


def gemm_calibration(arch: GPUArch) -> GemmCal:
    """The DGEMM constants for ``arch``'s generation."""
    return GEMM_CAL[arch.generation]


def gemm_features(cal: GemmCal, plan) -> tuple[int, int, int, int, int, int, int, int]:
    """Pure-integer features of one GEMM ``plan`` (a :class:`TTGTPlan`).

    Shared by the scalar model and the vectorized table's gather pass so
    the two paths cannot drift.  Returns
    ``(flops, m_eff, m_padded, n_eff, n_padded, k, traffic_bytes, t_ops)``.
    """
    m_eff, n_eff = (plan.n, plan.m) if plan.swap_ab else (plan.m, plan.n)
    tiles_m = -(-m_eff // cal.tile_m)
    tiles_n = -(-n_eff // cal.tile_n)
    flops = 2 * plan.batch * plan.m * plan.n * plan.k
    a_reads = plan.batch_a * plan.m * plan.k * tiles_n
    b_reads = plan.batch_b * plan.k * plan.n * tiles_m
    c_moves = 2 * plan.batch * plan.m * plan.n
    traffic = _BYTES_PER_ELEMENT * (a_reads + b_reads + c_moves)
    t_ops = (1 if plan.op_a == "T" else 0) + (1 if plan.op_b == "T" else 0)
    return (
        flops,
        m_eff,
        tiles_m * cal.tile_m,
        n_eff,
        tiles_n * cal.tile_n,
        plan.k,
        traffic,
        t_ops,
    )


def gemm_times(
    arch: GPUArch,
    cal: GemmCal,
    flops,
    m_eff,
    m_padded,
    n_eff,
    n_padded,
    k,
    traffic,
    t_ops,
):
    """``(compute_s, memory_s)`` for the GEMM leg.

    Arguments past ``cal`` are the :func:`gemm_features` outputs, as
    Python scalars or numpy arrays interchangeably.
    """
    quant = (m_eff / m_padded) * (n_eff / n_padded)
    ramp = k / (k + cal.k_half)
    eff = cal.peak_eff * quant * ramp
    compute_s = flops / (arch.peak_dp_gflops * 1e9 * eff)
    penalty = 1.0 + cal.trans_read_penalty * t_ops
    bandwidth = arch.dram_bandwidth_gbs * arch.dram_efficiency * 1e9
    memory_s = traffic * penalty / bandwidth
    return compute_s, memory_s


def combine_busy(compute_s, memory_s):
    """Partial compute/memory overlap, mirroring the loop-nest model's
    shape: the longer phase hides 70% of the shorter one."""
    return np.maximum(compute_s, memory_s) + 0.3 * np.minimum(compute_s, memory_s)
