"""PCIe transfer model.

The paper's results "include the time to transfer data back and forth
between CPU and device memory" — for the tiny Eqn.(1) computation this is
exactly what erases the GPU's advantage, so the transfer model matters for
reproducing Table II's first row.
"""

from __future__ import annotations

from repro.gpusim.arch import GPUArch

__all__ = ["transfer_time", "program_transfer_time"]

_BYTES_PER_ELEMENT = 8  # double precision throughout, as in the paper


def transfer_time(arch: GPUArch, elements: int, calls: int = 1) -> float:
    """Seconds to move ``elements`` doubles over PCIe in ``calls`` copies.

    Each cudaMemcpy pays the per-call latency; bandwidth is the sustained
    figure from the architecture datasheet.
    """
    if elements < 0 or calls < 0:
        raise ValueError("elements and calls must be non-negative")
    if elements == 0 or calls == 0:
        return 0.0
    bytes_total = elements * _BYTES_PER_ELEMENT
    return calls * arch.pcie_latency_us * 1e-6 + bytes_total / (
        arch.pcie_bandwidth_gbs * 1e9
    )


def program_transfer_time(
    arch: GPUArch, h2d_elements: int, d2h_elements: int, h2d_calls: int, d2h_calls: int = 1
) -> tuple[float, float]:
    """(host-to-device, device-to-host) seconds for a whole program.

    Inputs are copied up once per input array (one call each); temporaries
    stay resident; the final output comes back in one copy.
    """
    return (
        transfer_time(arch, h2d_elements, h2d_calls),
        transfer_time(arch, d2h_elements, d2h_calls),
    )
