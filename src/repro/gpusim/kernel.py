"""Concrete kernel launches: binding a configuration to an operation.

A :class:`KernelLaunch` is the meeting point of the three consumers of a
tuning decision: the CUDA code generator, the functional executor, and the
performance model.  It resolves a :class:`~repro.tcr.space.KernelConfig`
against its operation's extents into grid/block shapes, the serial loop
structure inside each thread, and a per-reference memory access
classification (coalesced / broadcast / strided with respect to ThreadX,
plus intra-thread locality of the innermost serial loop).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from repro.core.tensor import TensorRef
from repro.errors import ConfigurationError
from repro.tcr.memory import stride_of
from repro.tcr.program import TCROperation
from repro.tcr.space import ONE, KernelConfig

__all__ = [
    "AccessClass",
    "RefAccess",
    "KernelLaunch",
    "build_launch",
    "build_launch_cached",
]


class AccessClass(Enum):
    """How a warp's lanes (adjacent ThreadX values) touch one reference."""

    COALESCED = "coalesced"  # stride 1 in ThreadX: one transaction per warp
    BROADCAST = "broadcast"  # invariant in ThreadX: one lane's word serves all
    STRIDED = "strided"      # anything else: one transaction per lane


@dataclass(frozen=True)
class RefAccess:
    """Access-pattern summary of one array reference under a launch."""

    ref: TensorRef
    is_output: bool
    access_class: AccessClass
    #: element stride for the ThreadX index (0 when invariant)
    tx_stride: int
    #: element stride for the innermost serial loop (0 when invariant)
    inner_stride: int
    #: total elements of the underlying array
    elements: int

    @property
    def inner_local(self) -> bool:
        """Consecutive serial iterations touch nearby memory (<= one line)."""
        return 0 <= self.inner_stride <= 4


@dataclass(frozen=True)
class KernelLaunch:
    """Everything the simulator needs to know about one kernel invocation."""

    operation: TCROperation
    config: KernelConfig
    dims: Mapping[str, int]
    block_dim: tuple[int, int]       # (x, y) threads
    grid_dim: tuple[int, int]        # (x, y) blocks
    serial_loops: tuple[tuple[str, int], ...]  # (index, extent), outer->inner
    accesses: tuple[RefAccess, ...]

    @property
    def threads_per_block(self) -> int:
        return self.block_dim[0] * self.block_dim[1]

    @property
    def total_blocks(self) -> int:
        return self.grid_dim[0] * self.grid_dim[1]

    @property
    def total_threads(self) -> int:
        return self.threads_per_block * self.total_blocks

    @property
    def serial_iterations(self) -> int:
        n = 1
        for _idx, extent in self.serial_loops:
            n *= extent
        return n

    @property
    def flops(self) -> int:
        return self.operation.flops(self.dims)

    @property
    def reduction_trip(self) -> int:
        """Trip count of the innermost reduction loop (1 if none serial)."""
        red = set(self.operation.reduction_indices)
        for idx, extent in reversed(self.serial_loops):
            if idx in red:
                return extent
        return 1

    @property
    def unroll(self) -> int:
        return self.config.unroll

    def registers_per_thread(self) -> int:
        """Register-pressure estimate for the occupancy calculation.

        Base cost covers index arithmetic and the scalar-replaced output;
        each unrolled iteration keeps an extra operand pair live; each
        serial loop costs an induction variable.
        """
        base = 14
        per_unroll = 3
        per_loop = 2
        return base + per_unroll * max(0, self.unroll - 1) + per_loop * len(self.serial_loops)

    def describe(self) -> str:
        return (
            f"grid=({self.grid_dim[0]},{self.grid_dim[1]}) "
            f"block=({self.block_dim[0]},{self.block_dim[1]}) "
            f"serial={'x'.join(str(e) for _, e in self.serial_loops) or '1'} "
            f"unroll={self.unroll}"
        )


def _extent(index: str, dims: Mapping[str, int]) -> int:
    return 1 if index == ONE else dims[index]


def build_launch(
    operation: TCROperation,
    config: KernelConfig,
    dims: Mapping[str, int],
) -> KernelLaunch:
    """Resolve a configuration into a :class:`KernelLaunch`.

    Raises :class:`ConfigurationError` when the configuration does not fit
    the operation (wrong indices, reduction mapped to the grid, or a loop
    both mapped and serial).
    """
    if not isinstance(config, KernelConfig):
        raise ConfigurationError(
            f"only loop-nest KernelConfigs lower to a kernel launch, got "
            f"{type(config).__name__}; TTGT configurations are scored by "
            "the TTGT cost model and have no loop-nest lowering (codegen "
            "and the functional executor are loop-nest-only)"
        )
    parallel = set(operation.parallel_indices)
    all_indices = set(operation.all_indices)
    for role, idx in (("tx", config.tx), ("ty", config.ty), ("bx", config.bx), ("by", config.by)):
        if idx == ONE:
            if role == "tx":
                raise ConfigurationError("ThreadX must map a real loop")
            continue
        if idx not in all_indices:
            raise ConfigurationError(
                f"{role}={idx!r} is not an index of {operation}"
            )
        if idx not in parallel:
            raise ConfigurationError(
                f"{role}={idx!r} carries a dependence (reduction index) and "
                "cannot be a thread/block dimension"
            )
    mapped = config.mapped
    if len(set(mapped)) != len(mapped):
        raise ConfigurationError(f"decomposition repeats a loop: {mapped}")
    expected_serial = tuple(
        i for i in operation.output.indices + operation.reduction_indices
        if i not in set(mapped)
    )
    if sorted(config.serial_order) != sorted(expected_serial):
        raise ConfigurationError(
            f"serial order {config.serial_order} must cover exactly the "
            f"unmapped loops {expected_serial}"
        )
    red = set(operation.reduction_indices)
    inner_red_extent = 1
    for idx in reversed(config.serial_order):
        if idx in red:
            inner_red_extent = dims[idx]
            break
    if config.unroll < 1 or (inner_red_extent == 1 and config.unroll != 1):
        raise ConfigurationError(
            f"unroll={config.unroll} is invalid for a reduction trip of "
            f"{inner_red_extent}"
        )
    if config.unroll > inner_red_extent:
        raise ConfigurationError(
            f"unroll={config.unroll} exceeds the reduction trip count "
            f"{inner_red_extent}"
        )

    serial_loops = tuple((i, dims[i]) for i in config.serial_order)
    inner_serial = config.serial_order[-1] if config.serial_order else None

    accesses = []
    for ref, is_output in [(r, False) for r in operation.inputs] + [
        (operation.output, True)
    ]:
        tx_stride = stride_of(ref, config.tx, dims)
        inner_stride = (
            stride_of(ref, inner_serial, dims) if inner_serial is not None else 0
        )
        if tx_stride == 1:
            klass = AccessClass.COALESCED
        elif tx_stride == 0:
            klass = AccessClass.BROADCAST
        else:
            klass = AccessClass.STRIDED
        accesses.append(
            RefAccess(
                ref=ref,
                is_output=is_output,
                access_class=klass,
                tx_stride=tx_stride,
                inner_stride=inner_stride,
                elements=ref.size(dims),
            )
        )

    return KernelLaunch(
        operation=operation,
        config=config,
        dims=dims,
        block_dim=(_extent(config.tx, dims), _extent(config.ty, dims)),
        grid_dim=(_extent(config.bx, dims), _extent(config.by, dims)),
        serial_loops=serial_loops,
        accesses=tuple(accesses),
    )


@lru_cache(maxsize=65536)
def _build_launch_from_items(
    operation: TCROperation,
    config: KernelConfig,
    dims_items: tuple[tuple[str, int], ...],
) -> KernelLaunch:
    return build_launch(operation, config, dict(dims_items))


def build_launch_cached(
    operation: TCROperation,
    config: KernelConfig,
    dims: Mapping[str, int],
) -> KernelLaunch:
    """Memoized :func:`build_launch` for repeat visits to the same point.

    Annealing neighborhoods, cache-miss re-scores, and per-variant sweeps
    rebuild identical launches many times; the launch is immutable, so one
    construction per ``(operation, config, dims)`` suffices.  Failed builds
    are *not* cached (``lru_cache`` does not memoize exceptions) — penalty
    configurations re-pay construction, which is fine because they are also
    re-charged compile time by the evaluator.
    """
    return _build_launch_from_items(operation, config, tuple(sorted(dims.items())))
