"""Batching a contraction over many identical small tensors.

The paper targets "computations over thousands of identically-sized small
tensors … they occur naturally in the spectral element method and provide
a building block for computations with large tensors".  Eqn.(1) standalone
is the cautionary tale (60 kflops cannot amortize PCIe/launch costs);
batching it across mesh elements is what makes the GPU worthwhile.

:func:`batch_contraction` adds an element index to a contraction: the
output and the *varying* terms (the per-element data) gain the new index;
the remaining terms (shared operator matrices, like the interpolation
matrices A/B/C of Eqn.(1)) stay element-invariant.  The result is an
ordinary :class:`~repro.core.contraction.Contraction`, so the whole
pipeline — strength reduction, decision algorithm, SURF — applies
unchanged, and the element loop simply becomes one more parallel index for
the grid to consume.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.contraction import Contraction
from repro.core.indices import check_index_name
from repro.core.tensor import TensorRef
from repro.errors import ContractionError

__all__ = ["batch_contraction"]


def batch_contraction(
    contraction: Contraction,
    index: str = "e",
    size: int = 512,
    varying: Sequence[str] | None = None,
) -> Contraction:
    """Return ``contraction`` batched over a new leading index.

    Parameters
    ----------
    contraction:
        The per-element computation.
    index:
        Name of the new element index (must not already appear).
    size:
        Number of elements in the batch.
    varying:
        Names of the input tensors that differ per element.  Defaults to
        the terms of maximal rank (the "field" data), which matches the
        spectral-element pattern where small operator matrices are shared.
        The output always varies.
    """
    check_index_name(index)
    if index in contraction.all_indices:
        raise ContractionError(
            f"index {index!r} already appears in {contraction.name}"
        )
    if size < 1:
        raise ContractionError("batch size must be positive")
    if varying is None:
        max_rank = max(t.rank for t in contraction.terms)
        varying_set = {t.name for t in contraction.terms if t.rank == max_rank}
    else:
        varying_set = set(varying)
        known = {t.name for t in contraction.terms}
        unknown = varying_set - known
        if unknown:
            raise ContractionError(
                f"varying names {sorted(unknown)} are not terms of "
                f"{contraction.name}"
            )
        if not varying_set:
            raise ContractionError(
                "at least one term must vary per element (otherwise the "
                "batch dimension broadcasts, which is not a contraction)"
            )

    terms = tuple(
        TensorRef(t.name, (index,) + t.indices) if t.name in varying_set else t
        for t in contraction.terms
    )
    output = TensorRef(
        contraction.output.name, (index,) + contraction.output.indices
    )
    dims = dict(contraction.dims)
    dims[index] = size
    return Contraction(
        output=output,
        terms=terms,
        dims=dims,
        name=f"{contraction.name}_x{size}",
    )
