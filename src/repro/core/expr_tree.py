"""Binary contraction trees.

Algorithm 1 in the paper enumerates reorderings of the multiplication terms
using commutativity and associativity, creating intermediate temporaries.
Every such reordering is exactly a *full binary tree* whose leaves are the
original terms; each internal node is a binary contraction producing a
temporary, and every summation index is reduced at the lowest node above
which it no longer appears (the paper's "index occurring only in one term"
rule, applied eagerly).

This module defines the tree data type and the per-node index analysis; the
enumeration itself lives in :mod:`repro.core.strength_reduction` and the
lowering to TCR in :mod:`repro.core.variants`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.contraction import Contraction
from repro.core.indices import ordered_unique
from repro.errors import ContractionError

__all__ = ["Leaf", "Node", "ContractionTree"]


@dataclass(frozen=True)
class Leaf:
    """A tree leaf: the position of one RHS term in the source contraction."""

    term: int

    @property
    def leaves(self) -> frozenset[int]:
        return frozenset({self.term})

    def canonical(self) -> "Leaf":
        return self

    def __str__(self) -> str:
        return f"t{self.term}"


@dataclass(frozen=True)
class Node:
    """An internal node: contract the results of two subtrees."""

    left: "Leaf | Node"
    right: "Leaf | Node"

    @cached_property
    def leaves(self) -> frozenset[int]:
        overlap = self.left.leaves & self.right.leaves
        if overlap:
            raise ContractionError(f"tree reuses terms {sorted(overlap)}")
        return self.left.leaves | self.right.leaves

    def canonical(self) -> "Node":
        """Order-normalize children so commutatively-equal trees compare equal."""
        left = self.left.canonical()
        right = self.right.canonical()
        if min(right.leaves) < min(left.leaves):
            left, right = right, left
        return Node(left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.right})"


@dataclass(frozen=True)
class ContractionTree:
    """A full binary contraction tree bound to a specific contraction.

    Provides the per-node index analysis needed by both the cost model and
    the TCR lowering:

    * ``result_indices(node)`` — the indices a node's value carries, i.e.
      the indices present inside the subtree that are still needed outside
      it (either by another term or by the final output).  Order follows
      left-child-then-right-child appearance, matching the paper's
      temporaries (``temp1:(i,l,m) += C:(n,i)*U:(l,m,n)``).
    * ``summed_at(node)`` — the indices reduced when this node is evaluated.
    """

    contraction: Contraction
    root: Leaf | Node

    def __post_init__(self) -> None:
        nterms = len(self.contraction.terms)
        if self.root.leaves != frozenset(range(nterms)):
            raise ContractionError(
                f"tree covers terms {sorted(self.root.leaves)} but the "
                f"contraction has {nterms} terms"
            )

    # ------------------------------------------------------------------
    def subtree_indices(self, node: Leaf | Node) -> tuple[str, ...]:
        """All indices appearing anywhere inside ``node``'s subtree."""
        if isinstance(node, Leaf):
            return self.contraction.terms[node.term].indices
        return ordered_unique(
            self.subtree_indices(node.left) + self.subtree_indices(node.right)
        )

    def result_indices(self, node: Leaf | Node) -> tuple[str, ...]:
        """Indices carried by ``node``'s value after eager summation."""
        if node is self.root or (
            isinstance(node, (Leaf, Node)) and node.leaves == self.root.leaves
        ):
            return self.contraction.output.indices
        inside = set(node.leaves)
        outside_indices: set[str] = set(self.contraction.output.indices)
        for t, term in enumerate(self.contraction.terms):
            if t not in inside:
                outside_indices |= term.index_set
        return tuple(
            i for i in self.subtree_indices(node) if i in outside_indices
        )

    def summed_at(self, node: Leaf | Node) -> tuple[str, ...]:
        """Indices reduced when evaluating ``node`` (empty for most leaves)."""
        kept = set(self.result_indices(node))
        if isinstance(node, Leaf):
            inner = self.contraction.terms[node.term].indices
        else:
            inner = ordered_unique(
                self.result_indices(node.left) + self.result_indices(node.right)
            )
        return tuple(i for i in inner if i not in kept)

    def internal_nodes(self) -> list[Node]:
        """Internal nodes in bottom-up (children before parents) order."""
        out: list[Node] = []

        def visit(node: Leaf | Node) -> None:
            if isinstance(node, Node):
                visit(node.left)
                visit(node.right)
                out.append(node)

        visit(self.root)
        return out

    def reducing_leaves(self) -> list[Leaf]:
        """Leaves that need a unary pre-reduction (index unique to one term)."""
        return [
            leaf
            for leaf in self._all_leaves()
            if self.summed_at(leaf)
        ]

    def _all_leaves(self) -> list[Leaf]:
        out: list[Leaf] = []

        def visit(node: Leaf | Node) -> None:
            if isinstance(node, Leaf):
                out.append(node)
            else:
                visit(node.left)
                visit(node.right)

        visit(self.root)
        return out

    def __str__(self) -> str:
        return str(self.root)
