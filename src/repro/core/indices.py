"""Index bookkeeping for tensor contractions.

Indices are plain strings (``"i"``, ``"h7"``); this module centralizes the
validation and set algebra used throughout OCTOPI and TCR so that index
handling is consistent everywhere (ordered where order matters, sets where
it does not).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import ContractionError

__all__ = [
    "check_index_name",
    "check_dims",
    "ordered_unique",
    "iteration_space_size",
]

_INDEX_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def check_index_name(name: str) -> str:
    """Validate an index name (lowercase identifier) and return it."""
    if not isinstance(name, str) or not _INDEX_RE.match(name):
        raise ContractionError(
            f"invalid index name {name!r}: indices must be lowercase identifiers"
        )
    return name


def check_dims(dims: Mapping[str, int], required: Iterable[str]) -> dict[str, int]:
    """Validate that ``dims`` covers ``required`` indices with positive sizes."""
    out: dict[str, int] = {}
    for idx, size in dims.items():
        check_index_name(idx)
        if not isinstance(size, int) or size <= 0:
            raise ContractionError(f"dimension of index {idx!r} must be a positive int, got {size!r}")
        out[idx] = size
    missing = [idx for idx in required if idx not in out]
    if missing:
        raise ContractionError(f"missing dimensions for indices: {sorted(set(missing))}")
    return out


def ordered_unique(items: Iterable[str]) -> tuple[str, ...]:
    """Deduplicate while preserving first-occurrence order."""
    seen: set[str] = set()
    out: list[str] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return tuple(out)


def iteration_space_size(indices: Sequence[str], dims: Mapping[str, int]) -> int:
    """Product of the extents of ``indices`` (1 for the empty sequence)."""
    size = 1
    for idx in indices:
        try:
            size *= dims[idx]
        except KeyError:
            raise ContractionError(f"no dimension recorded for index {idx!r}") from None
    return size
