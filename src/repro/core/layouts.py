"""Temporary-array layout enumeration — an OCTOPI extension.

Section III closes its example with: "Choosing different subexpressions to
evaluate first will result in different fusion opportunities and sometimes
different operation counts.  *Performance depends on data layout in
memory* and subsequent transformations."  The lowering in
:mod:`repro.core.variants` fixes each temporary's layout to its
result-index order; this module exposes the remaining degree of freedom:
permuting a temporary's axes (which reorders the producer's output binding
and every consumer's access binding consistently, so the program stays
numerically identical while its coalescing/contiguity profile — and hence
the decision algorithm's candidate lists — changes).

This multiplies the algebraic space, so enumeration is capped and off by
default; the layout ablation bench quantifies what it buys.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.core.tensor import TensorRef
from repro.errors import TCRError
from repro.tcr.program import TCROperation, TCRProgram

__all__ = ["permute_temp_layout", "enumerate_layout_variants"]


def permute_temp_layout(
    program: TCRProgram, temp: str, order: Sequence[str]
) -> TCRProgram:
    """Return a copy of ``program`` with ``temp`` stored in ``order``.

    ``order`` must be a permutation of the temporary's current layout.  The
    producer's output reference and every consumer's input reference are
    rewritten to the same order, so the program computes the same values.
    """
    if temp not in program.temporaries and temp not in program.output_names:
        raise TCRError(f"{temp!r} is not an array written by this program")
    old = program.arrays[temp]
    order = tuple(order)
    if sorted(order) != sorted(old):
        raise TCRError(
            f"{order} is not a permutation of {temp!r}'s layout {old}"
        )
    # With positional access semantics, a consumer may bind *different*
    # index names to the axes than the producer did; rewriting must permute
    # each reference's own tuple the same way the axes move.
    axis_perm = [old.index(i) for i in order]

    def rewrite(ref: TensorRef) -> TensorRef:
        if ref.name != temp:
            return ref
        return TensorRef(temp, tuple(ref.indices[p] for p in axis_perm))

    operations = [
        TCROperation(rewrite(op.output), tuple(rewrite(r) for r in op.inputs))
        for op in program.operations
    ]
    arrays = dict(program.arrays)
    arrays[temp] = order
    return TCRProgram(
        name=program.name,
        dims=dict(program.dims),
        arrays=arrays,
        operations=operations,
        access=program.access,
    )


def enumerate_layout_variants(
    program: TCRProgram,
    max_variants: int = 8,
    include_original: bool = True,
) -> list[TCRProgram]:
    """Enumerate layout-permuted versions of ``program``'s temporaries.

    Deterministic order: the original first (if requested), then single-
    temporary rotations before full permutations, capped at
    ``max_variants``.  Every returned program is numerically equivalent to
    the input (tests verify this).
    """
    out: list[TCRProgram] = [program] if include_original else []
    seen: set[tuple] = {tuple(sorted(program.arrays.items()))}

    temps = list(program.temporaries)
    candidates: list[tuple[str, tuple[str, ...]]] = []
    for temp in temps:
        layout = program.arrays[temp]
        if len(layout) < 2:
            continue
        for perm in itertools.permutations(layout):
            if perm != layout:
                candidates.append((temp, perm))

    for temp, perm in candidates:
        if len(out) >= max_variants:
            break
        variant = permute_temp_layout(program, temp, perm)
        key = tuple(sorted(variant.arrays.items()))
        if key in seen:
            continue
        seen.add(key)
        out.append(variant)
    return out
