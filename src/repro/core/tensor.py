"""Tensor references: a name plus an ordered index tuple.

``A[l k]`` in the DSL becomes ``TensorRef("A", ("l", "k"))``.  Index order is
significant — it determines memory layout (row-major, last index fastest)
and therefore the contiguity analysis in :mod:`repro.tcr.memory`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.indices import check_index_name, iteration_space_size
from repro.errors import ContractionError

__all__ = ["TensorRef"]


@dataclass(frozen=True, order=True)
class TensorRef:
    """An occurrence of a tensor with a specific index binding.

    Attributes
    ----------
    name:
        Tensor identifier, e.g. ``"A"`` or ``"temp1"``.
    indices:
        Ordered index names; the *last* index is the fastest-varying
        (row-major layout convention, as in the paper's generated C/CUDA).
    """

    name: str
    indices: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ContractionError(f"invalid tensor name: {self.name!r}")
        if not isinstance(self.indices, tuple):
            object.__setattr__(self, "indices", tuple(self.indices))
        for idx in self.indices:
            check_index_name(idx)
        if len(set(self.indices)) != len(self.indices):
            # Repeated indices within one tensor (traces) are out of scope for
            # the paper's contraction class; reject them loudly.
            raise ContractionError(
                f"tensor {self.name!r} repeats an index: {self.indices}; "
                "diagonal/trace access is not a tensor contraction in this IR"
            )

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.indices)

    @property
    def index_set(self) -> frozenset[str]:
        """Indices as a set (order-insensitive queries)."""
        return frozenset(self.indices)

    def size(self, dims: Mapping[str, int]) -> int:
        """Number of elements under the given index extents."""
        return iteration_space_size(self.indices, dims)

    def shape(self, dims: Mapping[str, int]) -> tuple[int, ...]:
        """Concrete shape under the given index extents."""
        try:
            return tuple(dims[i] for i in self.indices)
        except KeyError as exc:
            raise ContractionError(
                f"tensor {self.name!r} uses index {exc.args[0]!r} with no dimension"
            ) from None

    def strides(self, dims: Mapping[str, int]) -> dict[str, int]:
        """Element stride of each index under row-major layout.

        The last index has stride 1; earlier indices have the product of the
        extents to their right.
        """
        strides: dict[str, int] = {}
        acc = 1
        for idx in reversed(self.indices):
            strides[idx] = acc
            acc *= dims[idx]
        return strides

    def rename(self, mapping: Mapping[str, str]) -> "TensorRef":
        """Return a copy with indices renamed through ``mapping``."""
        return TensorRef(self.name, tuple(mapping.get(i, i) for i in self.indices))

    def __str__(self) -> str:
        return f"{self.name}[{' '.join(self.indices)}]"

    @staticmethod
    def parse(text: str) -> "TensorRef":
        """Parse compact forms like ``"A[l k]"`` or ``"A[l,k]"``."""
        text = text.strip()
        if "[" not in text or not text.endswith("]"):
            raise ContractionError(f"cannot parse tensor reference: {text!r}")
        name, _, rest = text.partition("[")
        body = rest[:-1].replace(",", " ")
        indices: Iterable[str] = body.split()
        return TensorRef(name.strip(), tuple(indices))
