"""Algorithm 1 — enumeration of algebraic (strength-reduction) variants.

The paper's Algorithm 1 repeatedly (a) sums out any index occurring in only
one remaining term and (b) picks a pair of terms to multiply into a new
temporary, performing a depth-first search over the pair choices to
enumerate exhaustively.  The set of outcomes is exactly the set of *full
binary contraction trees* over the original terms (with eager summation
folded into each node), so we enumerate those directly: for ``n`` terms
there are ``(2n-3)!!`` distinct trees — 15 for the paper's four-term
Eqn.(1), matching the "fifteen different versions" reported in Section II.

Enumeration is exhaustive but deduplicated by commutative canonicalization,
and deterministic (trees come out in a stable order), which the autotuner
relies on for reproducible variant numbering.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.core.contraction import Contraction
from repro.core.expr_tree import ContractionTree, Leaf, Node
from repro.errors import ContractionError

__all__ = ["enumerate_trees", "count_trees", "double_factorial"]


def double_factorial(k: int) -> int:
    """``k!! = k * (k-2) * (k-4) * ...`` (1 for ``k <= 0``)."""
    result = 1
    while k > 1:
        result *= k
        k -= 2
    return result


def count_trees(nterms: int) -> int:
    """Number of distinct full binary contraction trees over ``nterms`` terms.

    ``(2n-3)!!``: 1, 1, 3, 15, 105, 945, ... for n = 1, 2, 3, 4, 5, 6.
    """
    if nterms < 1:
        raise ContractionError("a contraction has at least one term")
    return double_factorial(2 * nterms - 3)


def _trees_over(leaves: tuple[int, ...]) -> Iterator[Leaf | Node]:
    """Yield every canonical full binary tree whose leaf set is ``leaves``.

    Canonical form: the child subtree containing the smallest leaf is always
    the left child, so each commutative equivalence class appears exactly
    once.  ``leaves`` must be sorted.
    """
    if len(leaves) == 1:
        yield Leaf(leaves[0])
        return
    anchor = leaves[0]
    rest = leaves[1:]
    # Choose which of the remaining leaves join the anchor's side.  Iterating
    # subsets by bitmask in increasing order keeps the output deterministic.
    n = len(rest)
    for mask in range(2**n):
        with_anchor = (anchor,) + tuple(rest[i] for i in range(n) if mask >> i & 1)
        without = tuple(rest[i] for i in range(n) if not mask >> i & 1)
        if not without:
            continue  # the anchor side must not swallow everything
        # To avoid double counting {L,R} vs {R,L}: the anchor is always on
        # the left, and every split is generated once because the non-anchor
        # side is determined by the mask complement.
        for left in _trees_over(with_anchor):
            for right in _trees_over(without):
                yield Node(left, right)


def enumerate_trees(
    contraction: Contraction,
    max_variants: int | None = None,
) -> list[ContractionTree]:
    """Enumerate all strength-reduction variants of ``contraction``.

    Parameters
    ----------
    contraction:
        The source statement.
    max_variants:
        Optional cap; enumeration stops once this many trees were produced
        (useful for contractions with many terms, where ``(2n-3)!!``
        explodes).

    Returns
    -------
    list[ContractionTree]
        Deterministically ordered, commutatively-deduplicated variants.
        The naive single-node ordering (left-deep tree in term order) is
        always present.
    """
    nterms = len(contraction.terms)
    leaves = tuple(range(nterms))
    seen: set[Leaf | Node] = set()
    out: list[ContractionTree] = []
    for root in _trees_over(leaves):
        canon = root.canonical()
        if canon in seen:
            continue
        seen.add(canon)
        out.append(ContractionTree(contraction, canon))
        if max_variants is not None and len(out) >= max_variants:
            break
    return out


def left_deep_tree(contraction: Contraction) -> ContractionTree:
    """The source-order left-deep tree ``((t0 t1) t2) ...`` (the naive plan)."""
    root: Leaf | Node = Leaf(0)
    for t in range(1, len(contraction.terms)):
        root = Node(root, Leaf(t))
    return ContractionTree(contraction, root.canonical() if isinstance(root, Node) else root)


def best_trees_by_flops(
    trees: Sequence[ContractionTree],
    flops_of,
) -> list[ContractionTree]:
    """Return the trees achieving the minimum of ``flops_of(tree)``."""
    if not trees:
        return []
    costs = [flops_of(t) for t in trees]
    best = min(costs)
    return [t for t, c in zip(trees, costs) if c == best]
