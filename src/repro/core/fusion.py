"""Loop fusion analysis over TCR operation sequences (Section III).

After strength reduction, OCTOPI fuses the resulting loop nests where
possible: consecutive producer/consumer operations can share outer loops,
shrinking each temporary to the slice live at one shared-loop point (in the
best case a register scalar) and cutting its global-memory traffic.

Legality (domain-specific, as everything in TCR): a set of loops ``S`` can
be shared by a producer ``P`` and a consumer ``C`` iff

* every index in ``S`` occurs in both operations' iteration spaces, and
* ``S`` is a subset of ``P``'s output indices — so at each point of ``S``
  the produced slice of the temporary is complete before ``C`` reads it
  (the consumer reads the temporary with the same index bindings, which the
  TCR IR guarantees by construction).

The analysis is greedy and deterministic: it grows maximal fusion groups
left-to-right, keeping the running intersection of iteration spaces as the
shared loop set, exactly like the hand fusion shown for the paper's
Eqn.(1) example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.indices import iteration_space_size, ordered_unique
from repro.tcr.program import TCROperation, TCRProgram

__all__ = ["FusionGroup", "FusionPlan", "fusion_plan"]


@dataclass(frozen=True)
class FusionGroup:
    """A run of consecutive operations sharing the ``shared`` outer loops."""

    start: int
    stop: int  # exclusive, like range()
    shared: tuple[str, ...]

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __str__(self) -> str:
        loops = ",".join(self.shared) if self.shared else "-"
        return f"ops[{self.start}:{self.stop}] @ ({loops})"


@dataclass(frozen=True)
class FusionPlan:
    """The fusion decision for a whole TCR program."""

    program: TCRProgram
    groups: tuple[FusionGroup, ...]

    def group_of(self, op_index: int) -> FusionGroup:
        for group in self.groups:
            if group.start <= op_index < group.stop:
                return group
        raise IndexError(f"operation {op_index} outside program")

    def fused_pairs(self) -> int:
        """Number of producer/consumer edges actually fused."""
        return sum(g.size - 1 for g in self.groups)

    # ------------------------------------------------------------------
    # Memory effects (consumed by the CPU model and reports)
    # ------------------------------------------------------------------
    def temp_storage_elements(self) -> int:
        """Storage for temporaries after fusion.

        A temporary produced and consumed inside one group only materializes
        the slice indexed by its non-shared indices; others stay full size.
        """
        total = 0
        for t, name in self._temp_defs():
            group = self.group_of(t)
            consumer = self._consumer_of(name, t)
            layout = self.program.arrays[name]
            if consumer is not None and group.start <= consumer < group.stop:
                live = [i for i in layout if i not in group.shared]
                total += iteration_space_size(live, self.program.dims)
            else:
                total += iteration_space_size(layout, self.program.dims)
        return total

    def unfused_temp_storage_elements(self) -> int:
        return self.program.temp_elements()

    def scalarized_temporaries(self) -> tuple[str, ...]:
        """Temporaries that vanish into registers (all indices shared)."""
        out = []
        for t, name in self._temp_defs():
            group = self.group_of(t)
            consumer = self._consumer_of(name, t)
            layout = self.program.arrays[name]
            if (
                consumer is not None
                and group.start <= consumer < group.stop
                and all(i in group.shared for i in layout)
            ):
                out.append(name)
        return tuple(out)

    def _temp_defs(self) -> list[tuple[int, str]]:
        temps = set(self.program.temporaries)
        return [
            (t, op.output.name)
            for t, op in enumerate(self.program.operations)
            if op.output.name in temps
        ]

    def _consumer_of(self, name: str, after: int) -> int | None:
        for c in range(after + 1, len(self.program.operations)):
            op = self.program.operations[c]
            if any(ref.name == name for ref in op.inputs):
                return c
        return None

    def __str__(self) -> str:
        return " | ".join(str(g) for g in self.groups)


def _op_space(op: TCROperation) -> set[str]:
    return set(op.all_indices)


def _legal_shared(
    ops: list[TCROperation], start: int, stop: int, shared: set[str]
) -> bool:
    """Check the producer-completeness condition for every fused edge."""
    for p in range(start, stop - 1):
        producer_out = set(ops[p].output.indices)
        if not shared <= producer_out:
            return False
    return True


def fusion_plan(program: TCRProgram) -> FusionPlan:
    """Compute the greedy maximal fusion grouping for ``program``.

    Consecutive operations join the current group while (a) the later one
    consumes a value produced inside the group (fusion without dataflow
    gives no benefit and is not attempted) and (b) the running intersection
    of iteration spaces, restricted to each producer's output indices, stays
    non-empty and legal.
    """
    ops = program.operations
    groups: list[FusionGroup] = []
    start = 0
    shared = _op_space(ops[0])
    for nxt in range(1, len(ops)):
        produced = {ops[p].output.name for p in range(start, nxt)}
        consumes = any(ref.name in produced for ref in ops[nxt].inputs)
        candidate = shared & _op_space(ops[nxt])
        if consumes and candidate and _legal_shared(ops, start, nxt + 1, candidate):
            shared = candidate
            continue
        groups.append(_finish_group(program, start, nxt, shared))
        start = nxt
        shared = _op_space(ops[nxt])
    groups.append(_finish_group(program, start, len(ops), shared))
    return FusionPlan(program=program, groups=tuple(groups))


def _finish_group(
    program: TCRProgram, start: int, stop: int, shared: set[str]
) -> FusionGroup:
    if stop - start == 1:
        # A singleton group shares nothing (there is no partner loop nest).
        return FusionGroup(start, stop, ())
    # Order the shared loops by their appearance in the first operation so
    # codegen has a deterministic outer-loop order.
    first = program.operations[start]
    order = ordered_unique(first.all_indices)
    return FusionGroup(
        start, stop, tuple(i for i in order if i in shared)
    )
