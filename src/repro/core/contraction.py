"""The core mathematical object: a multi-term tensor contraction.

A :class:`Contraction` is the semantic content of one OCTOPI statement

.. code-block:: text

    V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])

— an output tensor, a product of input terms, the index extents, and the
derived classification of indices into *output* (appear on the LHS) and
*summation* (appear only on the RHS, implicitly summed per the Einstein
convention the paper uses).

It also knows how to evaluate itself with :func:`numpy.einsum`, which is the
ground truth every transformed variant is verified against.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.indices import check_dims, ordered_unique, iteration_space_size
from repro.core.tensor import TensorRef
from repro.errors import ContractionError

__all__ = ["Contraction"]


@dataclass(frozen=True)
class Contraction:
    """A single contraction statement ``output = sum over product of terms``.

    Attributes
    ----------
    output:
        LHS tensor reference.
    terms:
        RHS factors, in source order.
    dims:
        Extent of every index appearing anywhere in the statement.
    name:
        Optional label (benchmark/kernel name) used in reports.
    """

    output: TensorRef
    terms: tuple[TensorRef, ...]
    dims: Mapping[str, int] = field(default_factory=dict)
    name: str = "contraction"

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))
        if not self.terms:
            raise ContractionError("a contraction needs at least one RHS term")
        rhs_indices = set()
        for term in self.terms:
            rhs_indices |= term.index_set
        missing = set(self.output.indices) - rhs_indices
        if missing:
            raise ContractionError(
                f"output indices {sorted(missing)} never appear on the RHS of "
                f"{self.name}: the result would be a broadcast, not a contraction"
            )
        object.__setattr__(
            self, "dims", dict(check_dims(self.dims, rhs_indices | set(self.output.indices)))
        )

    # ------------------------------------------------------------------
    # Index classification
    # ------------------------------------------------------------------
    @property
    def all_indices(self) -> tuple[str, ...]:
        """Every index, output indices first then summation, source order."""
        return ordered_unique(
            tuple(self.output.indices)
            + tuple(i for t in self.terms for i in t.indices)
        )

    @property
    def output_indices(self) -> tuple[str, ...]:
        """Indices of the LHS (the parallel loops, per the paper's analysis)."""
        return self.output.indices

    @property
    def summation_indices(self) -> tuple[str, ...]:
        """Indices appearing on the RHS only (implicitly summed)."""
        out = set(self.output.indices)
        return ordered_unique(
            i for t in self.terms for i in t.indices if i not in out
        )

    # ------------------------------------------------------------------
    # Sizes and costs
    # ------------------------------------------------------------------
    def iteration_space(self) -> int:
        """Size of the full (naive) iteration space: product of all extents."""
        return iteration_space_size(self.all_indices, self.dims)

    def naive_flops(self) -> int:
        """Flops of the naive nested-loop implementation.

        Each innermost iteration performs ``len(terms)-1`` multiplies and one
        add into the accumulator — ``len(terms)`` flops for multi-term
        products, 2 for a single binary contraction with accumulation, and
        1 multiply-only when there is nothing to sum.
        """
        per_point = len(self.terms)  # (terms-1) muls + 1 add
        if not self.summation_indices and len(self.terms) == 1:
            per_point = 1  # pure copy/scale has no add
        return self.iteration_space() * per_point

    def output_size(self) -> int:
        return self.output.size(self.dims)

    def input_elements(self) -> int:
        """Total elements across distinct input tensors (transfer footprint)."""
        seen: dict[str, int] = {}
        for term in self.terms:
            seen.setdefault(term.name, term.size(self.dims))
        return sum(seen.values())

    # ------------------------------------------------------------------
    # Evaluation (ground truth)
    # ------------------------------------------------------------------
    def einsum_spec(self) -> str:
        """The :func:`numpy.einsum` subscript string for this contraction."""
        letters = self._index_letters()
        ins = ",".join("".join(letters[i] for i in t.indices) for t in self.terms)
        out = "".join(letters[i] for i in self.output.indices)
        return f"{ins}->{out}"

    def _index_letters(self) -> dict[str, str]:
        alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        indices = self.all_indices
        if len(indices) > len(alphabet):
            raise ContractionError("too many distinct indices for einsum lowering")
        return {idx: alphabet[n] for n, idx in enumerate(indices)}

    def evaluate(self, inputs: Mapping[str, np.ndarray]) -> np.ndarray:
        """Evaluate via ``np.einsum`` on the provided input arrays.

        Raises :class:`ContractionError` if an input is missing or its shape
        disagrees with the declared extents.
        """
        operands = []
        for term in self.terms:
            if term.name not in inputs:
                raise ContractionError(f"missing input tensor {term.name!r}")
            arr = np.asarray(inputs[term.name])
            want = term.shape(self.dims)
            if arr.shape != want:
                raise ContractionError(
                    f"input {term.name!r} has shape {arr.shape}, expected {want}"
                )
            operands.append(arr)
        return np.einsum(self.einsum_spec(), *operands)

    def random_inputs(
        self, seed: int = 0, dtype: np.dtype | type = np.float64
    ) -> dict[str, np.ndarray]:
        """Generate deterministic random inputs matching the declared shapes."""
        rng = np.random.default_rng(seed)
        out: dict[str, np.ndarray] = {}
        for term in self.terms:
            if term.name not in out:
                out[term.name] = rng.standard_normal(term.shape(self.dims)).astype(dtype)
        return out

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def rename(self, mapping: Mapping[str, str]) -> "Contraction":
        """Rename indices everywhere (used to avoid temp-name collisions)."""
        new_dims = {mapping.get(k, k): v for k, v in self.dims.items()}
        return Contraction(
            output=self.output.rename(mapping),
            terms=tuple(t.rename(mapping) for t in self.terms),
            dims=new_dims,
            name=self.name,
        )

    def __str__(self) -> str:
        rhs = " * ".join(str(t) for t in self.terms)
        s = self.summation_indices
        if s:
            return f"{self.output} = Sum([{' '.join(s)}], {rhs})"
        return f"{self.output} = {rhs}"

    @staticmethod
    def from_einsum(
        spec: str,
        names: Sequence[str],
        dims: Mapping[str, int] | int,
        output_name: str = "out",
        name: str = "contraction",
    ) -> "Contraction":
        """Build a contraction from an einsum spec like ``"lk,mj,ni,lmn->ijk"``.

        ``dims`` may be an int (uniform extent) or a per-index mapping keyed
        by the subscript letters.
        """
        spec = spec.replace(" ", "")
        if "->" not in spec:
            raise ContractionError("einsum spec must be explicit (contain '->')")
        lhs, _, out = spec.partition("->")
        subscripts = lhs.split(",")
        if len(subscripts) != len(names):
            raise ContractionError(
                f"{len(subscripts)} operands in spec but {len(names)} names given"
            )
        all_letters = ordered_unique("".join(subscripts) + out)
        if isinstance(dims, int):
            dim_map = {c: dims for c in all_letters}
        else:
            dim_map = {c: dims[c] for c in all_letters}
        terms = tuple(
            TensorRef(nm, tuple(sub)) for nm, sub in zip(names, subscripts)
        )
        return Contraction(
            output=TensorRef(output_name, tuple(out)),
            terms=terms,
            dims=dim_map,
            name=name,
        )
