"""OCTOPI core: tensor-contraction IR and high-level transformations.

This subpackage is the paper's "stage 1": it holds the mathematical
representation of a contraction (:class:`~repro.core.contraction.Contraction`),
Algorithm 1's strength-reduction enumeration
(:mod:`repro.core.strength_reduction`), operation counting
(:mod:`repro.core.opcount`), loop fusion (:mod:`repro.core.fusion`), and the
lowering of each algebraic variant to a TCR program
(:mod:`repro.core.variants`).
"""

from repro.core.tensor import TensorRef
from repro.core.contraction import Contraction
from repro.core.expr_tree import ContractionTree, Leaf, Node
from repro.core.strength_reduction import enumerate_trees, double_factorial
from repro.core.opcount import tree_operation_count, program_operation_count
from repro.core.variants import lower_tree_to_tcr, generate_variants
from repro.core.pipeline import compile_dsl

__all__ = [
    "TensorRef",
    "Contraction",
    "ContractionTree",
    "Leaf",
    "Node",
    "enumerate_trees",
    "double_factorial",
    "tree_operation_count",
    "program_operation_count",
    "lower_tree_to_tcr",
    "generate_variants",
    "compile_dsl",
]
