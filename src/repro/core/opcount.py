"""Operation counting for contraction trees and TCR programs.

Strength reduction's whole point (Section III) is replacing one big
``O(N^6)`` loop nest with a few ``O(N^4)`` nests; this module computes the
flop cost of a :class:`~repro.core.expr_tree.ContractionTree` so variants
can be compared and the "same amount of floating-point computation" claim
(six equal-flop versions for Eqn.(1)) verified.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.expr_tree import ContractionTree
from repro.core.indices import iteration_space_size, ordered_unique

__all__ = [
    "tree_operation_count",
    "tree_temp_elements",
    "program_operation_count",
]


def _node_flops(tree: ContractionTree, dims: Mapping[str, int]) -> int:
    total = 0
    # Unary pre-reductions at leaves (index unique to one term).
    for leaf in tree.reducing_leaves():
        term = tree.contraction.terms[leaf.term]
        total += 2 * iteration_space_size(term.indices, dims)
    for node in tree.internal_nodes():
        space = ordered_unique(
            tree.result_indices(node.left) + tree.result_indices(node.right)
        )
        points = iteration_space_size(space, dims)
        # One multiply per point, plus one add per point when the node either
        # reduces an index or accumulates into an existing value (+=); the
        # generated code always accumulates, so we charge 2 flops per point,
        # matching the paper's "each requires N^4 operations" accounting.
        total += 2 * points
    return total


def tree_operation_count(tree: ContractionTree) -> int:
    """Total flops to evaluate ``tree`` at the contraction's declared dims."""
    return _node_flops(tree, tree.contraction.dims)


def tree_temp_elements(tree: ContractionTree) -> int:
    """Total elements of the temporaries the tree materializes.

    The root writes the real output and leaves read real inputs, so only
    non-root internal nodes (plus unary-reduced leaves) cost temp storage.
    """
    dims = tree.contraction.dims
    total = 0
    for leaf in tree.reducing_leaves():
        total += iteration_space_size(tree.result_indices(leaf), dims)
    for node in tree.internal_nodes():
        if node is tree.root:
            continue
        total += iteration_space_size(tree.result_indices(node), dims)
    return total


def program_operation_count(program) -> int:
    """Flops of a lowered TCR program (should equal the tree's count)."""
    return program.flops()
