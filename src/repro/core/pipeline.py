"""OCTOPI stage-1 driver: DSL text in, TCR variants out.

This is the top of the Barracuda funnel (Fig. 1): parse the mathematical
input, enumerate strength-reduction variants (Algorithm 1), lower each to a
TCR program, and attach fusion analysis.  The autotuner
(:mod:`repro.autotune.tuner`) then builds a search space per variant and
hands the union to SURF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contraction import Contraction
from repro.core.fusion import FusionPlan, fusion_plan
from repro.core.variants import Variant, generate_variants
from repro.obs.tracer import get_tracer

__all__ = [
    "CompiledContraction",
    "compile_dsl",
    "compile_contraction",
    "compile_dsl_to_program",
]


@dataclass(frozen=True)
class CompiledContraction:
    """OCTOPI output for one contraction: all variants plus analyses."""

    contraction: Contraction
    variants: tuple[Variant, ...]
    fusion: tuple[FusionPlan, ...]  # parallel to `variants`

    @property
    def min_flops(self) -> int:
        return min(v.flops for v in self.variants)

    def minimal_flop_variants(self) -> tuple[Variant, ...]:
        """Variants achieving the minimum op count (the paper's 'six')."""
        best = self.min_flops
        return tuple(v for v in self.variants if v.flops == best)

    def variant(self, index: int) -> Variant:
        return self.variants[index]


def compile_contraction(
    contraction: Contraction, max_variants: int | None = None
) -> CompiledContraction:
    """Run OCTOPI on an already-built contraction."""
    tracer = get_tracer()
    with tracer.span(
        "octopi.variants", category="octopi", contraction=contraction.name
    ) as sp:
        variants = tuple(generate_variants(contraction, max_variants))
        if tracer.enabled:
            sp.set(variants=len(variants))
    with tracer.span("octopi.fusion", category="octopi"):
        plans = tuple(fusion_plan(v.program) for v in variants)
    return CompiledContraction(contraction, variants, plans)


def compile_dsl(
    text: str,
    default_dim: int | None = None,
    name: str = "program",
    max_variants: int | None = None,
) -> list[CompiledContraction]:
    """Run OCTOPI on DSL text; one result per statement/specialization."""
    # Imported here: the DSL parser produces core IR objects, so importing it
    # at module scope would make repro.core and repro.dsl mutually circular.
    from repro.dsl.parser import parse_program

    tracer = get_tracer()
    with tracer.span("dsl.parse", category="dsl", source=name) as sp:
        parsed = parse_program(text, default_dim=default_dim, name=name)
        if tracer.enabled:
            sp.set(statements=len(parsed.contractions))
    return [
        compile_contraction(c, max_variants=max_variants)
        for c in parsed.contractions
    ]


def compile_dsl_to_program(
    text: str,
    default_dim: int | None = None,
    name: str = "program",
):
    """Compile a multi-statement DSL input into ONE TCR program.

    Where :func:`compile_dsl` treats each statement as an independent
    contraction (each getting its own OCTOPI variant enumeration), this
    path treats the statement sequence as a *fixed* operation pipeline —
    the form of Nekbone's ``local_grad3``/``local_grad3t``, where later
    statements may consume earlier outputs and several ``+=`` statements
    may accumulate into the same result:

    .. code-block:: text

        dim e = 512
        dim i j k l = 12
        ur[e i j k] = Sum([l], d[i l] * u[e l j k])
        us[e i j k] = Sum([l], d[j l] * u[e i l k])
        ut[e i j k] = Sum([l], d[k l] * u[e i j l])

    Only unary/binary products are accepted (a TCR operation is at most
    binary); use :func:`compile_dsl` for multi-term statements that need
    strength reduction first.
    """
    from repro.dsl.parser import parse_program
    from repro.errors import DSLSemanticError
    from repro.tcr.program import TCROperation, TCRProgram

    parsed = parse_program(text, default_dim=default_dim, name=name)
    dims: dict[str, int] = {}
    arrays: dict[str, tuple[str, ...]] = {}
    operations: list[TCROperation] = []
    for contraction in parsed.contractions:
        if len(contraction.terms) > 2:
            raise DSLSemanticError(
                f"statement {contraction.name!r} has {len(contraction.terms)} "
                "factors; TCR operations are at most binary — run compile_dsl "
                "(strength reduction) on it instead"
            )
        for idx, size in contraction.dims.items():
            if dims.setdefault(idx, size) != size:
                raise DSLSemanticError(
                    f"index {idx!r} has extent {dims[idx]} in one statement "
                    f"and {size} in another"
                )
        for ref in (contraction.output, *contraction.terms):
            have = arrays.get(ref.name)
            if have is None:
                arrays[ref.name] = ref.indices
            else:
                have_shape = tuple(dims[i] for i in have)
                want_shape = tuple(dims[i] for i in ref.indices)
                if have_shape != want_shape:
                    raise DSLSemanticError(
                        f"array {ref.name!r} used with shapes {have_shape} "
                        f"and {want_shape}"
                    )
        operations.append(TCROperation(contraction.output, contraction.terms))
    return TCRProgram(name=name, dims=dims, arrays=arrays, operations=operations)
