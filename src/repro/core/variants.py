"""Lowering contraction trees to TCR programs (OCTOPI's output, Fig. 2b).

Each internal node of a :class:`~repro.core.expr_tree.ContractionTree`
becomes one binary TCR operation writing a temporary (``temp1``, ``temp2``,
...); the root writes the declared output.  Leaves whose term carries an
index used nowhere else get a unary pre-reduction operation, implementing
lines 5–9 of the paper's Algorithm 1.

:func:`generate_variants` packages the full OCTOPI stage-1 output: every
strength-reduction variant of a contraction, lowered and annotated with its
flop count and temporary footprint, deterministically numbered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contraction import Contraction
from repro.core.expr_tree import ContractionTree, Leaf, Node
from repro.core.opcount import tree_operation_count, tree_temp_elements
from repro.core.strength_reduction import enumerate_trees
from repro.core.tensor import TensorRef
from repro.errors import ContractionError
from repro.tcr.program import TCROperation, TCRProgram

__all__ = ["Variant", "lower_tree_to_tcr", "generate_variants"]


@dataclass(frozen=True)
class Variant:
    """One algebraic variant of a contraction, ready for TCR tuning."""

    index: int
    tree: ContractionTree
    program: TCRProgram
    flops: int
    temp_elements: int

    @property
    def name(self) -> str:
        return self.program.name

    def __str__(self) -> str:
        return (
            f"variant {self.index}: {self.tree} "
            f"({self.flops} flops, {self.temp_elements} temp elements)"
        )


def lower_tree_to_tcr(tree: ContractionTree, name: str | None = None) -> TCRProgram:
    """Lower one contraction tree to a TCR program.

    The produced operation order is bottom-up left-to-right, temporaries are
    numbered in creation order, and array layouts follow each value's result
    index order — reproducing the shape of the paper's Fig. 2(b).
    """
    contraction = tree.contraction
    if name is None:
        name = contraction.name
    arrays: dict[str, tuple[str, ...]] = {}
    for term in contraction.terms:
        existing = arrays.get(term.name)
        if existing is not None and existing != term.indices:
            raise ContractionError(
                f"tensor {term.name!r} appears with layouts {existing} and "
                f"{term.indices}; give the occurrences distinct names"
            )
        arrays[term.name] = term.indices
    out_ref = contraction.output
    if out_ref.name in arrays:
        raise ContractionError(
            f"output {out_ref.name!r} also appears as an input; not supported"
        )

    operations: list[TCROperation] = []
    value_ref: dict[Leaf | Node, TensorRef] = {}
    counter = 0

    def fresh_temp(indices: tuple[str, ...]) -> TensorRef:
        nonlocal counter
        counter += 1
        ref = TensorRef(f"temp{counter}", indices)
        arrays[ref.name] = indices
        return ref

    def ref_of(node: Leaf | Node) -> TensorRef:
        if node in value_ref:
            return value_ref[node]
        assert isinstance(node, Leaf)
        term = contraction.terms[node.term]
        summed = tree.summed_at(node)
        if summed:
            # Unary pre-reduction: temp[result] += term[all indices].
            temp = fresh_temp(tree.result_indices(node))
            operations.append(TCROperation(temp, (term,)))
            value_ref[node] = temp
            return temp
        value_ref[node] = term
        return term

    internal = tree.internal_nodes()
    for pos, node in enumerate(internal):
        left = ref_of(node.left)
        right = ref_of(node.right)
        is_root = pos == len(internal) - 1
        if is_root:
            out = out_ref
            arrays[out.name] = out.indices
        else:
            out = fresh_temp(tree.result_indices(node))
        operations.append(TCROperation(out, (left, right)))
        value_ref[node] = out

    if not internal:
        # Single-term contraction: the root is a leaf; emit one unary op.
        term = contraction.terms[0]
        arrays[out_ref.name] = out_ref.indices
        operations.append(TCROperation(out_ref, (term,)))

    return TCRProgram(
        name=name,
        dims=dict(contraction.dims),
        arrays=arrays,
        operations=operations,
    )


def generate_variants(
    contraction: Contraction,
    max_variants: int | None = None,
) -> list[Variant]:
    """OCTOPI stage 1: enumerate, lower, and annotate every variant."""
    variants: list[Variant] = []
    for i, tree in enumerate(enumerate_trees(contraction, max_variants)):
        program = lower_tree_to_tcr(tree, name=f"{contraction.name}_v{i}")
        variants.append(
            Variant(
                index=i,
                tree=tree,
                program=program,
                flops=tree_operation_count(tree),
                temp_elements=tree_temp_elements(tree),
            )
        )
    return variants
