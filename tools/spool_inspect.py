#!/usr/bin/env python
"""Summarize an elastic-search lease spool directory.

Usage::

    python tools/spool_inspect.py SPOOL_DIR [--ttl S] [--json]

Prints the spool's generation and coordinator, outstanding leases,
claims (live vs. expired against each claim's own deadline), buffered
results, and worker heartbeats (live vs. stale against ``--ttl``).
Exits 1 when the directory is not an elastic spool (alien kind or
format) or no coordinator ever initialized it, so CI can gate on
spool health.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import SpoolError  # noqa: E402
from repro.surf.lease import LeaseSpool  # noqa: E402


def summarize(spool: LeaseSpool, ttl: float) -> dict:
    meta = spool.meta()
    if meta is None:
        raise SpoolError(f"{spool.root} has no meta.json (no coordinator ran)")
    now = time.time()

    def stems(directory: Path) -> list[str]:
        try:
            return sorted(p.stem for p in directory.iterdir() if p.suffix == ".json")
        except OSError:
            return []

    leases = stems(spool.leases_dir)
    results = stems(spool.results_dir)
    claims = {"live": [], "expired": []}
    for lease_id in stems(spool.claims_dir):
        info = spool.claim_info(lease_id) or {}
        bucket = "live" if info.get("deadline", 0.0) >= now else "expired"
        claims[bucket].append(
            {"lease": lease_id, "worker": info.get("worker"), "pid": info.get("pid")}
        )
    live = {w.get("worker") for w in spool.live_workers(ttl)}
    workers = [
        {
            "worker": w.get("worker"),
            "pid": w.get("pid"),
            "leases_done": w.get("leases_done", 0),
            "live": w.get("worker") in live,
            "age_seconds": round(now - w.get("beat_at", 0.0), 3),
        }
        for w in spool.workers()
    ]
    return {
        "root": str(spool.root),
        "generation": meta.get("generation"),
        "coordinator_pid": meta.get("coordinator_pid"),
        "evaluator_digest": meta.get("evaluator_digest"),
        "shutdown_requested": spool.shutdown_requested(),
        "leases_outstanding": leases,
        "results_buffered": results,
        "claims": claims,
        "workers": workers,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spool", help="spool directory")
    parser.add_argument(
        "--ttl", type=float, default=30.0,
        help="heartbeat liveness horizon, seconds (default 30)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)

    root = Path(args.spool)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 1
    try:
        stats = summarize(LeaseSpool(root), args.ttl)
    except SpoolError as exc:
        print(f"invalid spool: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0

    print(f"elastic spool {root}")
    print(
        f"  generation {stats['generation']} "
        f"(coordinator pid {stats['coordinator_pid']}, "
        f"evaluator {stats['evaluator_digest']})"
    )
    if stats["shutdown_requested"]:
        print("  shutdown requested")
    print(
        f"  leases outstanding: {len(stats['leases_outstanding'])}  "
        f"results buffered: {len(stats['results_buffered'])}"
    )
    print(
        f"  claims: {len(stats['claims']['live'])} live, "
        f"{len(stats['claims']['expired'])} expired"
    )
    for claim in stats["claims"]["expired"]:
        print(
            f"    expired: {claim['lease']} held by "
            f"{claim['worker']} (pid {claim['pid']})"
        )
    live = sum(1 for w in stats["workers"] if w["live"])
    print(f"  workers: {live} live of {len(stats['workers'])} seen")
    for worker in stats["workers"]:
        state = "live" if worker["live"] else "stale"
        print(
            f"    {worker['worker']} (pid {worker['pid']}): {state}, "
            f"{worker['leases_done']} lease(s) done, "
            f"last beat {worker['age_seconds']}s ago"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
