#!/usr/bin/env python3
"""Summarize a Barracuda trace file (``--trace`` output or JSONL spans).

Usage::

    python tools/trace_inspect.py out.trace
    python tools/trace_inspect.py out.trace --top 10 --json summary.json

Accepts both exporter formats of :mod:`repro.obs.exporters`: a Chrome
trace-event file (``{"traceEvents": [...]}``) or span-per-line JSONL.
Prints per-category and per-span-name time breakdowns, the longest
individual spans, and the aggregated search/eval counters carried as span
attributes (the same numbers ``SearchTelemetry`` reports — the trace is
the unified carrier).  Exits 1 on an unreadable or structurally invalid
file, 0 otherwise.  When a ``manifest.json`` sits next to the trace, its
provenance header is printed too.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from pathlib import Path

#: Monotone counter attributes summed over search.batch events (the
#: authoritative per-batch records) for the "counter totals" section.
COUNTER_KEYS = (
    "evaluations",
    "cache_hits",
    "invalid",
    "transient",
    "permanent",
    "retries",
)


def load_records(path: Path) -> list[dict]:
    """Load trace records as dicts with name/cat/ph/dur_us/args keys."""
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    records: list[dict] = []
    if stripped.startswith("{"):
        payload = json.loads(text)
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("not a Chrome trace: no traceEvents array")
        for event in events:
            records.append(
                {
                    "name": event.get("name", "?"),
                    "cat": event.get("cat", "misc"),
                    "ph": event.get("ph", "X"),
                    "dur_us": float(event.get("dur", 0.0)),
                    "args": event.get("args", {}),
                }
            )
    else:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            span = json.loads(line)
            duration = span.get("duration_s")
            records.append(
                {
                    "name": span.get("name", "?"),
                    "cat": span.get("category") or "misc",
                    "ph": "i" if duration is None else "X",
                    "dur_us": 0.0 if duration is None else float(duration) * 1e6,
                    "args": span.get("attributes", {}),
                }
            )
    if not records:
        raise ValueError("trace contains no spans")
    return records


def summarize(records: list[dict], top: int = 5) -> dict:
    """Build the summary dict the CLI prints (and can dump as JSON)."""
    spans = [r for r in records if r["ph"] == "X"]
    events = [r for r in records if r["ph"] != "X"]
    by_category: dict[str, dict[str, float]] = defaultdict(
        lambda: {"count": 0, "total_us": 0.0}
    )
    by_name: dict[str, dict[str, float]] = defaultdict(
        lambda: {"count": 0, "total_us": 0.0, "max_us": 0.0}
    )
    for r in spans:
        cat = by_category[r["cat"]]
        cat["count"] += 1
        cat["total_us"] += r["dur_us"]
        name = by_name[r["name"]]
        name["count"] += 1
        name["total_us"] += r["dur_us"]
        name["max_us"] = max(name["max_us"], r["dur_us"])
    for r in events:
        by_name[r["name"]]["count"] += 1

    counters: dict[str, float] = {key: 0.0 for key in COUNTER_KEYS}
    batches = 0
    best = float("inf")
    wall = 0.0
    for r in records:
        if r["name"] != "search.batch":
            continue
        batches += 1
        args = r["args"]
        for key in COUNTER_KEYS:
            counters[key] += float(args.get(key, 0) or 0)
        if "best_so_far" in args:
            best = min(best, float(args["best_so_far"]))
        wall = max(wall, float(args.get("simulated_wall_seconds", 0.0) or 0.0))
    counters["batches"] = batches
    if batches:
        counters["best_objective"] = best
        counters["simulated_wall_seconds"] = wall

    top_spans = sorted(spans, key=lambda r: -r["dur_us"])[:top]
    return {
        "spans": len(spans),
        "events": len(events),
        "categories": {k: dict(v) for k, v in sorted(by_category.items())},
        "names": {k: dict(v) for k, v in sorted(by_name.items())},
        "counters": counters,
        "top_spans": [
            {"name": r["name"], "cat": r["cat"], "dur_us": r["dur_us"]}
            for r in top_spans
        ],
    }


def print_summary(summary: dict, path: Path) -> None:
    print(f"trace: {path}")
    print(f"  {summary['spans']} spans, {summary['events']} events")
    print("per-phase time (by category):")
    for cat, agg in sorted(
        summary["categories"].items(), key=lambda kv: -kv[1]["total_us"]
    ):
        print(
            f"  {cat:<12} {agg['total_us'] / 1e3:10.2f} ms"
            f"  ({int(agg['count'])} spans)"
        )
    print("per-span-name time:")
    for name, agg in sorted(
        summary["names"].items(), key=lambda kv: -kv[1]["total_us"]
    ):
        print(
            f"  {name:<20} {agg['total_us'] / 1e3:10.2f} ms"
            f"  ({int(agg['count'])} x, max {agg.get('max_us', 0.0) / 1e3:.2f} ms)"
        )
    print(f"top {len(summary['top_spans'])} spans by duration:")
    for r in summary["top_spans"]:
        print(f"  {r['dur_us'] / 1e3:10.2f} ms  {r['name']} [{r['cat']}]")
    counters = summary["counters"]
    if counters.get("batches"):
        print("counter totals (search.batch events):")
        print(f"  batches:    {int(counters['batches'])}")
        for key in COUNTER_KEYS:
            print(f"  {key + ':':<12}{int(counters[key])}")
        print(f"  best_objective: {counters['best_objective']:.6g}")
        print(
            "  simulated_wall_seconds: "
            f"{counters['simulated_wall_seconds']:.2f}"
        )


def print_manifest(trace_path: Path) -> None:
    manifest_path = trace_path.parent / "manifest.json"
    if not manifest_path.exists():
        return
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        print(f"manifest: {manifest_path} (unreadable)")
        return
    print(
        f"manifest: {payload.get('name')} on {payload.get('arch')} "
        f"(seed {payload.get('seed')}, searcher {payload.get('searcher')}, "
        f"package {payload.get('package_version')})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome-trace JSON or JSONL span file")
    parser.add_argument(
        "--top", type=int, default=5, help="longest spans to list"
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also dump the summary as JSON ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    path = Path(args.trace)
    try:
        records = load_records(path)
    except (OSError, ValueError) as exc:
        print(f"INVALID trace {path}: {exc}")
        return 1
    summary = summarize(records, top=args.top)
    print_summary(summary, path)
    print_manifest(path)
    if args.json:
        payload = json.dumps(summary, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"summary written to {args.json}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_inspect.py t | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
