"""Inspect and validate an autotuner checkpoint directory.

Usage:
    python tools/checkpoint_inspect.py DIR [--prune]

Prints the run fingerprint, searcher progress, telemetry totals, eval-cache
and quarantine sizes for ``DIR`` (recursing into per-variant ``v*/``
subdirectories), and validates the state file's structure.  ``--prune``
removes stale ``.state.json.tmp.*`` files left behind by killed writers.

Exit status: 0 when every state file found is valid, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import CheckpointError  # noqa: E402
from repro.surf.cache import EvaluationCache, QuarantineStore  # noqa: E402
from repro.surf.checkpoint import (  # noqa: E402
    CheckpointManager,
    EVAL_CACHE_FILENAME,
    QUARANTINE_FILENAME,
    STATE_FILENAME,
)


def _describe_state(payload: dict) -> list[str]:
    lines = []
    fingerprint = payload.get("fingerprint", {})
    if fingerprint:
        lines.append("fingerprint:")
        for key in sorted(fingerprint):
            lines.append(f"  {key} = {fingerprint[key]}")
    state = payload.get("searcher") or {}
    lines.append(f"searcher: {state.get('searcher', '?')}")
    history = state.get("history")
    if history is not None:
        finite = sum(1 for _i, y in history if y == y and y != float("inf"))
        lines.append(f"history: {len(history)} entries ({finite} finite)")
    if "champions" in state:
        lines.append(
            f"champions: {len(state['champions'])} variants done, "
            f"next variant {state.get('next_variant')}"
        )
    for key in ("best_y", "useful", "remaining", "queue", "fits"):
        if key in state:
            value = state[key]
            if isinstance(value, list):
                value = f"{len(value)} entries"
            lines.append(f"{key}: {value}")
    telemetry = state.get("telemetry") or {}
    records = telemetry.get("records", [])
    if records:
        lines.append(f"telemetry: {len(records)} batch records")
    counters = payload.get("extra", {}).get("evaluator_counters", {})
    if counters:
        interesting = {
            key: value
            for key, value in sorted(counters.items())
            if isinstance(value, (int, float)) and value
        }
        lines.append(f"evaluator counters: {interesting}")
    return lines


def inspect_dir(directory: Path, prune: bool, indent: str = "") -> bool:
    """Print one checkpoint directory; returns False on a corrupt state."""
    ok = True
    manager = CheckpointManager(directory)
    if prune:
        for stale in manager.prune_tmp():
            print(f"{indent}pruned stale tmp: {stale.name}")
    state_path = directory / STATE_FILENAME
    if state_path.exists():
        try:
            payload = manager.load()
        except CheckpointError as exc:
            print(f"{indent}INVALID {state_path}: {exc}")
            ok = False
        else:
            for line in _describe_state(payload or {}):
                print(f"{indent}{line}")
    else:
        print(f"{indent}no {STATE_FILENAME}")
    cache_path = directory / EVAL_CACHE_FILENAME
    if cache_path.exists():
        cache = EvaluationCache(cache_path)
        suffix = (
            f" ({cache.corrupt_lines} corrupt lines skipped)"
            if cache.corrupt_lines
            else ""
        )
        print(f"{indent}eval cache: {len(cache)} entries{suffix}")
    quarantine_path = directory / QUARANTINE_FILENAME
    if quarantine_path.exists():
        quarantine = QuarantineStore(quarantine_path)
        print(f"{indent}quarantine: {len(quarantine)} fingerprints")
        for fingerprint, reason in sorted(quarantine.entries().items()):
            print(f"{indent}  {fingerprint}: {reason}")
    for sub in sorted(directory.glob("v*")):
        if sub.is_dir() and (sub / STATE_FILENAME).exists():
            print(f"{indent}variant directory {sub.name}/:")
            ok = inspect_dir(sub, prune, indent + "  ") and ok
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", type=Path, help="checkpoint directory")
    parser.add_argument(
        "--prune", action="store_true",
        help="remove stale .state.json.tmp.* files from killed writers",
    )
    args = parser.parse_args(argv)
    if not args.directory.is_dir():
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 1
    print(f"checkpoint directory {args.directory}:")
    return 0 if inspect_dir(args.directory, args.prune) else 1


if __name__ == "__main__":
    raise SystemExit(main())
