#!/usr/bin/env python
"""Summarize (and maintain) a content-addressed result store directory.

Usage::

    python tools/store_inspect.py STORE_DIR [--top N] [--json] [--compact MAX]

Prints per-shard occupancy, corrupt-line and duplicate-key counts, and
the most-stored workloads.  ``--compact`` rewrites the shards dropping
duplicate keys and evicting the oldest entries beyond ``MAX`` per shard
(run only with writers quiesced).  Exits 1 when any shard is structurally
invalid (bad or missing header) so CI can gate on store health.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import StoreError  # noqa: E402
from repro.serve.store import ResultStore  # noqa: E402


def summarize(store: ResultStore, top: int) -> dict:
    stats = store.stats()
    names = Counter()
    archs = Counter()
    evaluations = 0
    for _key, record in store.entries():
        names[record.get("name", "?")] += 1
        archs[record.get("arch", "?")] += 1
        search = record.get("search", {})
        evaluations += int(search.get("evaluations", 0))
    stats["top_workloads"] = names.most_common(top)
    stats["architectures"] = archs.most_common()
    stats["stored_evaluations"] = evaluations
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("store", help="result-store directory")
    parser.add_argument("--top", type=int, default=10, help="top-N workloads to list")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--compact", type=int, default=None, metavar="MAX",
        help="rewrite shards: dedup + keep newest MAX entries per shard",
    )
    args = parser.parse_args(argv)

    root = Path(args.store)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 1
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store = ResultStore(root)
    except StoreError as exc:
        print(f"invalid store: {exc}", file=sys.stderr)
        return 1

    if args.compact is not None:
        outcome = store.compact(max_entries_per_shard=args.compact)
        print(
            f"compacted: kept {outcome['kept']}, "
            f"evicted {outcome['evicted']}, "
            f"deduplicated {outcome['deduplicated']}"
        )

    stats = summarize(store, args.top)
    if args.json:
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0

    print(f"result store {root}")
    print(
        f"  entries: {stats['entries']} across {stats['shard_files']} shard "
        f"file(s); stored model evaluations: {stats['stored_evaluations']}"
    )
    print(
        f"  corrupt lines: {stats['corrupt_lines']}  "
        f"duplicate keys (first-wins shadowed): {stats['duplicate_keys']}"
    )
    for warning in caught:
        print(f"  warning: {warning.message}")
    if stats["per_shard"]:
        print("  per shard:")
        for shard, count in stats["per_shard"].items():
            print(f"    {shard}: {count}")
    if stats["top_workloads"]:
        print("  top workloads:")
        for name, count in stats["top_workloads"]:
            print(f"    {name}: {count}")
    if stats["architectures"]:
        archs = ", ".join(f"{a} ({n})" for a, n in stats["architectures"])
        print(f"  architectures: {archs}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
