"""Calibration harness: prints paper-vs-model for every headline number.

Run after any change to the gpusim constants:
    python tools/calibrate.py [--quick]
"""
import sys, time
from repro.workloads import eqn1, lg3, lg3t, tce_ex, nwchem_kernel
from repro.autotune import Autotuner
from repro.gpusim.arch import GTX980, K20, C2050
from repro.gpusim.cpu import CPUPerformanceModel
from repro.gpusim.openacc import OpenACCModel

quick = "--quick" in sys.argv
EV = 60 if quick else 100
POOL = 1200 if quick else 2500

cpu = CPUPerformanceModel()
t0 = time.time()

def tune(wl, arch, **kw):
    tuner = Autotuner(arch, max_evaluations=EV, batch_size=10, pool_size=POOL, seed=1, **kw)
    return wl.tune(tuner)

print("== Table II: individual contractions ==")
paper2 = {
  "eqn1": dict(speed=0.63, g980=1.99, k20=1.42, c2050=1.89, s980=3556),
  "lg3":  dict(speed=23.74, g980=42.74, k20=41.52, c2050=42.47, s980=325),
  "lg3t": dict(speed=22.87, g980=41.11, k20=38.38, c2050=34.99, s980=357),
  "tce_ex": dict(speed=29.77, g980=42.72, k20=17.82, c2050=14.25, s980=277),
}
for mk in ["eqn1","lg3","lg3t","tce_ex"]:
    wl = {"eqn1":eqn1,"lg3":lg3,"lg3t":lg3t,"tce_ex":tce_ex}[mk]()
    seq = cpu.sequential_timing(wl.reference_program())
    row = [mk, f"seq={seq.gflops:.2f}GF"]
    for arch, key in [(GTX980,'g980'),(K20,'k20'),(C2050,'c2050')]:
        r = tune(wl, arch)
        dg = r.timing.device_gflops
        row.append(f"{arch.generation}: {dg:.1f} (paper {paper2[mk][key]})" + (f" search={r.search_seconds:.0f}s(p{paper2[mk]['s980']})" if key=='g980' else ""))
        if key == 'g980':
            row.append(f"speedup={dg/seq.gflops:.2f} (paper {paper2[mk]['speed']})")
    print("  " + " | ".join(row), f"[{time.time()-t0:.0f}s]")

print("== Table IV: NWChem (GTX980) + OpenMP ==")
paper4 = {"s1": (2.47,2.61,16.14), "d1": (3.90,25.29,115.37), "d2": (5.60,14.90,50.00)}
for fam in ["s1","d1","d2"]:
    wl = nwchem_kernel(fam, 1)
    seq = cpu.sequential_timing(wl.program, tuned=True)
    omp = cpu.openmp_timing(wl.program, tuned=True)
    r = tune(wl, GTX980)
    p = paper4[fam]
    print(f"  {fam}: seq={seq.gflops:.2f}(p{p[0]}) omp={omp.gflops:.2f}(p{p[1]}) barracuda={r.timing.device_gflops:.1f}(p{p[2]})", f"[{time.time()-t0:.0f}s]")

print("== Figure 3 sample: d1_1 on K20 (speedup over naive OpenACC) ==")
wl = nwchem_kernel("d1", 1)
r = tune(wl, K20)
acc = OpenACCModel(r.search and __import__('repro.gpusim.perfmodel', fromlist=['GPUPerformanceModel']).GPUPerformanceModel(K20))
naive = acc.naive_timing(wl.program)
opt = acc.optimized_timing(wl.program, r.best_config)
print(f"  naive={naive.device_gflops:.2f}GF opt={opt.device_gflops:.1f}GF barracuda={r.timing.device_gflops:.1f}GF -> speedups {opt.device_gflops/naive.device_gflops:.1f}x / {r.timing.device_gflops/naive.device_gflops:.1f}x (paper d1 range 20-70x)")
print(f"total {time.time()-t0:.0f}s")
