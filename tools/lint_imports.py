"""Minimal unused-import checker (no external deps).

Flags `import x` / `from m import x` names that never appear elsewhere in
the module source. String-based fallback keeps it simple; __init__ files
are exempt (re-exports).
"""
import ast
import pathlib
import sys


def check(path: pathlib.Path) -> list[str]:
    src = path.read_text()
    tree = ast.parse(src)
    imported: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = (alias.asname or alias.name).split(".")[0]
                imported[name] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = node.lineno
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            pass
    # names used in annotations-as-strings or docstrings don't count; also
    # consider __all__ entries as usage.
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for name in list(imported):
                if name in node.value.split():
                    used.add(name)
    problems = []
    for name, lineno in imported.items():
        if name not in used:
            problems.append(f"{path}:{lineno}: unused import {name!r}")
    return problems


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "src")
    bad = []
    for path in sorted(root.rglob("*.py")):
        if path.name == "__init__.py":
            continue
        bad.extend(check(path))
    print("\n".join(bad) if bad else "clean")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
